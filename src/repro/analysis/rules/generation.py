"""RL002 generation-protocol: snapshot, revalidate, stamp your keys.

Every cache in the engine is invalidated by a monotone **generation
counter** (TBox axioms, ABox/database inserts, constraint discovery).
The protocol, as practiced by ``perf.cache``, ``obda.evaluation`` and
``obda.sql.stats``:

1. **bracket** — snapshot the generation *before* computing, compare it
   again before installing the result (a mid-compute mutation must
   discard the work, not poison the cache) — or put the generation
   *into the cache key*, which is self-invalidating;
2. **install by assignment** — ``cache.setdefault(key, value)`` keeps
   serving the *old* entry when a stale one is present; PR 7's
   stale-shared-index bug (``StatisticsCatalog.index`` kept answering
   with pre-insert rows) was exactly this, fixed by plain assignment.
   ``setdefault`` is legitimate only under a snapshot-identity guard
   (``if self._cache is cache: cache.setdefault(...)``) where the
   snapshot can never hold a stale entry.

This rule fires inside functions that both *read a generation* and
*store into a cache* — everything else is out of its jurisdiction.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..visitor import FileContext, RuleVisitor, expr_text, terminal_name

__all__ = ["GenerationProtocolRule"]

#: receiver-name substrings that make a ``.put``/``.setdefault``/
#: subscript-store count as a cache install
_CACHE_HINTS = ("cache", "_stats", "_index", "_extents", "memo")


def _is_generation_expr(node: ast.AST) -> bool:
    """A read of a generation counter, by naming convention.

    Matches ``x.generation``, ``self._tbox_generation``,
    ``provider.generation()``, ``self._data_generation()`` and
    ``getattr(x, "generation", 0)``.
    """
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "getattr":
            return any(
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and "generation" in arg.value
                for arg in node.args
            )
        name = terminal_name(func)
        return name is not None and "generation" in name.lower()
    if isinstance(node, (ast.Attribute, ast.Name)):
        name = terminal_name(node)
        return name is not None and "generation" in name.lower()
    return False


def _cacheish(text: Optional[str]) -> bool:
    if text is None:
        return False
    lowered = text.lower()
    return any(hint in lowered for hint in _CACHE_HINTS)


class _FunctionFacts:
    """What one function does with generations and caches."""

    def __init__(self, node: ast.AST):
        self.node = node
        self.generation_reads: List[ast.AST] = []
        self.generation_vars: Set[str] = set()
        self.has_generation_compare = False
        self.stores: List[ast.AST] = []
        self.setdefault_calls: List[ast.Call] = []
        self.identity_guarded: Set[str] = set()
        self.key_tuples_with_stamp = False
        #: ``.put(key, ...)`` calls whose key tuple lacks a stamp
        self.unstamped_key_puts: List[Tuple[ast.Call, str]] = []


class GenerationProtocolRule(RuleVisitor):
    rule_id = "RL002"
    rule_name = "generation-protocol"
    invariant = (
        "a function that reads a generation counter and installs into a "
        "cache must bracket (snapshot + revalidate via comparison) or put "
        "the stamp in the key; installs use assignment, not setdefault, "
        "unless guarded by snapshot identity (`is`)"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._facts: List[_FunctionFacts] = []

    def enter_function(self, node: ast.AST) -> None:
        self._facts.append(self._collect(node))

    def leave_function(self, node: ast.AST) -> None:
        facts = self._facts.pop()
        if facts.generation_reads and facts.stores:
            if not facts.has_generation_compare and not facts.key_tuples_with_stamp:
                if facts.unstamped_key_puts:
                    for call, key_name in facts.unstamped_key_puts:
                        self.report(
                            call,
                            f"cache key `{key_name}` is built from "
                            "generation-stamped data but omits the "
                            "generation stamp; a data change will keep "
                            "serving the old entry",
                        )
                else:
                    self.report(
                        facts.node,
                        "reads a generation counter and installs into a "
                        "cache without revalidating (no generation "
                        "comparison) and without the stamp in the cache "
                        "key — a mid-compute mutation can poison the cache",
                    )
        self._check_setdefault(facts)

    def _check_setdefault(self, facts: _FunctionFacts) -> None:
        if not facts.generation_reads and not facts.has_generation_compare:
            return
        for call in facts.setdefault_calls:
            func = call.func
            receiver = (
                expr_text(func.value) if isinstance(func, ast.Attribute) else ""
            )
            if receiver in facts.identity_guarded:
                continue
            self.report(
                call,
                f"`{receiver}.setdefault(...)` installs into a "
                "generation-validated cache; a stale entry keeps being "
                "served (the PR-7 stale-shared-index bug) — assign, or "
                "guard the snapshot with an `is` identity check",
            )

    # -- fact collection -------------------------------------------------------

    def _collect(self, node: ast.AST) -> _FunctionFacts:
        facts = _FunctionFacts(node)
        # nested defs stay in the walk on purpose: closures over the
        # parent's generation snapshot (the perf.cache single-flight
        # pattern) revalidate inside the closure, and that comparison
        # must count for the enclosing scope too
        for child in ast.walk(node):
            if _is_generation_expr(child):
                facts.generation_reads.append(child)
            if isinstance(child, ast.Assign) and _is_generation_expr(child.value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        facts.generation_vars.add(target.id)
            if isinstance(child, ast.Compare):
                sides = [child.left, *child.comparators]
                if any(_is_generation_expr(side) for side in sides) or any(
                    isinstance(side, ast.Name) and side.id in facts.generation_vars
                    for side in sides
                ):
                    facts.has_generation_compare = True
                if any(isinstance(op, (ast.Is, ast.IsNot)) for op in child.ops):
                    for side in sides:
                        facts.identity_guarded.add(expr_text(side))
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver_text = expr_text(child.func.value)
                if child.func.attr == "put" and _cacheish(receiver_text):
                    facts.stores.append(child)
                    self._scan_key_argument(child, facts)
                if child.func.attr == "setdefault" and _cacheish(receiver_text):
                    facts.stores.append(child)
                    facts.setdefault_calls.append(child)
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Subscript) and _cacheish(
                        expr_text(target.value)
                    ):
                        facts.stores.append(child)
        # key tuples: any tuple built in this function containing a
        # generation expression or a captured generation variable
        for child in ast.walk(node):
            if isinstance(child, ast.Tuple):
                for element in child.elts:
                    if _is_generation_expr(element) or (
                        isinstance(element, ast.Name)
                        and element.id in facts.generation_vars
                    ):
                        facts.key_tuples_with_stamp = True
        return facts

    def _scan_key_argument(self, call: ast.Call, facts: _FunctionFacts) -> None:
        """A `.put(key, ...)` whose key is a local stamp-free tuple."""
        if not call.args:
            return
        key = call.args[0]
        if not isinstance(key, ast.Name):
            return
        function = facts.node
        for child in ast.walk(function):
            if not isinstance(child, ast.Assign) or not isinstance(
                child.value, ast.Tuple
            ):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == key.id
                for target in child.targets
            ):
                continue
            stamped = any(
                _is_generation_expr(element)
                or (
                    isinstance(element, ast.Name)
                    and element.id in facts.generation_vars
                )
                for element in child.value.elts
            )
            if not stamped:
                facts.unstamped_key_puts.append((call, key.id))
            return
