"""RL005 sql-safety: SQL text is built in the SQL layer, through helpers.

Two invariants:

* **layer confinement** — SQL text is hand-rendered only inside
  ``repro/obda/sql/`` (``render.py``'s ``_identifier``/``_column``/
  ``_literal`` and ``backends.py``'s ``_quote``); any other module
  interpolating into SQL-keyword-bearing text is bypassing the one
  place where quoting is audited;
* **helper provenance** — inside the SQL layer, every value
  interpolated into SQL text must come from a quoting helper, a
  renderer call, or a literal-derived local.  Interpolating a raw
  parameter or a data attribute (``f"SELECT * FROM {table_name}"``)
  reintroduces the identifier-injection class that conditional quoting
  closed.

The provenance analysis is an intra-function taint check: constants,
calls (assumed to be vetted fragment builders — helpers and renderers),
and locals assigned only from safe expressions are safe; parameters,
attributes and subscripted data are not.  ``%``/``str.format`` into SQL
text is flagged everywhere — the layer's convention is f-strings over
helper results, which this rule can actually see through.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from ..visitor import RuleVisitor, expr_text

__all__ = ["SqlSafetyRule"]

#: uppercase statement-starter keywords that mark a string as SQL text.
#: Weak keywords (FROM/WHERE/UNION/EXISTS/VALUES alone) are deliberately
#: not triggers: they appear in logic pretty-printers (`EXISTS x. φ`) and
#: in fragment builders whose enclosing statement already triggers.
_SQL_KEYWORDS = re.compile(
    r"\b(SELECT|INSERT INTO|DELETE FROM|CREATE TABLE|CREATE INDEX|"
    r"DROP TABLE|ALTER TABLE|ATTACH DATABASE|UPDATE\s+[\w%{]|PRAGMA\s+[\w%{])"
)

#: path fragments marking the sanctioned SQL-rendering layer
_SQL_LAYER = ("obda/sql/",)


def _in_sql_layer(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _SQL_LAYER)


def _literal_text(node: ast.JoinedStr) -> str:
    return "".join(
        part.value
        for part in node.values
        if isinstance(part, ast.Constant) and isinstance(part.value, str)
    )


class _Provenance:
    """Intra-function safety of names: local, assigned only from safe."""

    def __init__(self, function: Optional[ast.AST]):
        self.assignments: Dict[str, List[ast.AST]] = {}
        self.params: Set[str] = set()
        if function is None:
            return
        args = getattr(function, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                self.params.add(arg.arg)
        for child in ast.walk(function):
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        self.assignments.setdefault(target.id, []).append(
                            child.value
                        )
            elif isinstance(child, ast.AugAssign) and isinstance(
                child.target, ast.Name
            ):
                self.assignments.setdefault(child.target.id, []).append(
                    child.value
                )
            elif isinstance(child, (ast.For, ast.comprehension)):
                # a loop target inherits the safety of its iterable:
                # `for i in range(n)` / `for s in ("t", "n")` are safe,
                # `for row in rows` is as (un)safe as `rows`
                for name_node in ast.walk(child.target):
                    if isinstance(name_node, ast.Name):
                        self.assignments.setdefault(name_node.id, []).append(
                            child.iter
                        )

    def safe_name(self, name: str, _seen: Optional[Set[str]] = None) -> bool:
        seen = _seen or set()
        if name in seen:
            return True  # self-referential accumulation (s = s + ...)
        seen.add(name)
        if name in self.params and name not in self.assignments:
            return False
        sources = self.assignments.get(name)
        if sources is None:
            # unknown: module-level constant or builtin — trust it; the
            # cross-module blind spot is documented
            return name not in self.params
        return all(self.safe_expr(source, seen) for source in sources)

    def safe_expr(self, node: ast.AST, _seen: Optional[Set[str]] = None) -> bool:
        seen = _seen if _seen is not None else set()
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Call):
            # calls are vetted fragment builders: quoting helpers,
            # renderer methods, ", ".join(...) aggregations
            return True
        if isinstance(node, ast.Name):
            return self.safe_name(node.id, seen)
        if isinstance(node, ast.JoinedStr):
            return all(
                self.safe_expr(part.value, seen)
                for part in node.values
                if isinstance(part, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self.safe_expr(node.value, seen)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Mod)
        ):
            return self.safe_expr(node.left, seen) and self.safe_expr(
                node.right, seen
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(self.safe_expr(element, seen) for element in node.elts)
        if isinstance(node, ast.Subscript):
            return self.safe_expr(node.value, seen)
        if isinstance(node, ast.IfExp):
            return self.safe_expr(node.body, seen) and self.safe_expr(
                node.orelse, seen
            )
        # attributes, parameters, comprehension elements, everything else:
        # data, not vetted SQL fragments
        return False


class SqlSafetyRule(RuleVisitor):
    rule_id = "RL005"
    rule_name = "sql-safety"
    invariant = (
        "SQL text is interpolated only inside repro/obda/sql/, and only "
        "from quoting-helper/renderer results — never from raw parameters "
        "or data attributes; %/.format into SQL text is always flagged"
    )

    def _provenance(self) -> _Provenance:
        return _Provenance(self.current_function)

    # -- f-strings -------------------------------------------------------------

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        literal = _literal_text(node)
        if _SQL_KEYWORDS.search(literal):
            interpolations = [
                part for part in node.values if isinstance(part, ast.FormattedValue)
            ]
            if interpolations and not _in_sql_layer(self.ctx.path):
                self.report(
                    node,
                    "SQL text interpolated outside the SQL layer "
                    "(repro/obda/sql/); route identifiers through "
                    "render.py's quoting helpers",
                )
            elif interpolations:
                provenance = self._provenance()
                for part in interpolations:
                    if not provenance.safe_expr(part.value):
                        self.report(
                            part.value,
                            f"`{expr_text(part.value)}` interpolated into "
                            "SQL text without passing through a quoting "
                            "helper (conditional-quoting bypass)",
                        )
        self.generic_visit(node)

    # -- %-format and str.format ----------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod):
            left = node.left
            if (
                isinstance(left, ast.Constant)
                and isinstance(left.value, str)
                and _SQL_KEYWORDS.search(left.value)
            ):
                self.report(
                    node,
                    "%-formatting into SQL text; use an f-string over "
                    "quoting-helper results so provenance stays checkable",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "format"
            and isinstance(func.value, ast.Constant)
            and isinstance(func.value.value, str)
            and _SQL_KEYWORDS.search(func.value.value)
        ):
            self.report(
                node,
                "str.format(...) into SQL text; use an f-string over "
                "quoting-helper results so provenance stays checkable",
            )
        self.generic_visit(node)
