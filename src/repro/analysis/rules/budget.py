"""RL003 budget-threading: bounded execution everywhere.

The resilience contract of :mod:`repro.runtime.budget`: every pipeline
phase accepts a ``budget``/``watch`` allowance, polls it in its
potentially-unbounded loops, and forwards it into the phases it calls.
A worklist loop that never consults the budget, or a call that silently
drops it, reopens the unbounded-hang class of bug the runtime PR closed.

Calibration, matching how the codebase actually amortizes polls:

* only ``while`` loops are held to the in-loop poll — they are the
  worklist/fixpoint loops whose trip count is not bounded by already-
  materialized data.  ``for`` loops over sequences are linear passes;
  their budget enforcement happens at the poll in the enclosing loop or
  phase boundary (a documented coarseness, see DESIGN.md);
* a poll in an **enclosing loop** of the same function counts — the
  sanctioned pattern is ``if source % 256 == 0: watch.check_budget()``
  in the outer loop, inner loops riding along;
* a function that takes a budget parameter and then never mentions it
  at all has dropped the contract on the floor, wherever its loops are;
* calls to known pipeline phases from a budget-carrying function must
  forward the budget.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional

from ..visitor import RuleVisitor, terminal_name

__all__ = ["BudgetThreadingRule"]

#: parameter names that put a function under the budget contract
_BUDGET_PARAMS: FrozenSet[str] = frozenset({"budget", "watch", "deadline"})

#: substrings marking a name as budget-carrying
_BUDGET_HINTS = ("budget", "watch", "deadline")

#: budget poll methods
_POLL_METHODS: FrozenSet[str] = frozenset({"check", "tick", "check_budget"})

#: known pipeline phases that accept (and must be handed) the budget
_PHASE_CALLEES: FrozenSet[str] = frozenset(
    {
        "perfect_ref",
        "presto_rewrite",
        "unfold",
        "evaluate_ucq",
        "evaluate_cq",
        "execute_unfolded",
        "prune_ucq_with_constraints",
        "relevant_inclusions",
    }
)


def _is_budget_name(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _BUDGET_PARAMS or any(
        hint in lowered for hint in _BUDGET_HINTS
    )


def _mentions_budget(node: ast.AST) -> bool:
    """Does any name in this subtree look budget-carrying?"""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and _is_budget_name(child.id):
            return True
        if isinstance(child, ast.Attribute) and _is_budget_name(child.attr):
            return True
    return False


def _consults_budget(node: ast.AST) -> bool:
    """A poll (`budget.tick()`), a scoped call, or a forwarded budget."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if isinstance(func, ast.Attribute):
            if func.attr in _POLL_METHODS and _mentions_budget(func.value):
                return True
            if func.attr == "scoped" and _mentions_budget(func.value):
                return True
        for arg in child.args:
            if _mentions_budget(arg):
                return True
        for keyword in child.keywords:
            if keyword.arg is not None and _is_budget_name(keyword.arg):
                return True
            if _mentions_budget(keyword.value):
                return True
    return False


def _budget_params(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return [
        arg.arg
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if arg.arg.lower() in _BUDGET_PARAMS
    ]


def _is_stub_body(body: List[ast.stmt]) -> bool:
    """Protocol/ABC bodies (docstring, ``...``, ``raise``) owe nothing."""
    for statement in body:
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        if isinstance(statement, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


class BudgetThreadingRule(RuleVisitor):
    rule_id = "RL003"
    rule_name = "budget-threading"
    invariant = (
        "a budget-carrying function uses its budget; its `while` loops poll "
        "it (tick/check, possibly amortized in an enclosing loop) or forward "
        "it; known pipeline-phase calls are handed the budget, not dropped"
    )

    def _budget_in_scope(self) -> bool:
        function = self.current_function
        return function is not None and bool(_budget_params(function))

    # -- while-loop discipline -------------------------------------------------

    def _enclosing_loop_consults(self, node: ast.AST) -> bool:
        """An outer loop's (amortized) poll covers the inner loops."""
        current = self.ctx.parent(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            if isinstance(current, (ast.While, ast.For)) and _consults_budget(
                current
            ):
                return True
            current = self.ctx.parent(current)
        return False

    def visit_While(self, node: ast.While) -> None:
        if (
            self._budget_in_scope()
            and not _consults_budget(node)
            and not self._enclosing_loop_consults(node)
        ):
            is_infinite = isinstance(node.test, ast.Constant) and bool(
                node.test.value
            )
            header = "`while True` loop" if is_infinite else "`while` loop"
            self.report(
                node,
                f"{header} in a budget-carrying function never consults the "
                "budget (no tick/check in this or an enclosing loop, no "
                "forwarding) — the worklist can overrun the deadline "
                "unbounded",
            )
        self.generic_visit(node)

    # -- ignored budgets -------------------------------------------------------

    def leave_function(self, node: ast.AST) -> None:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        params = _budget_params(node)
        if not params or _is_stub_body(node.body):
            return
        if not any(_mentions_budget(statement) for statement in node.body):
            self.report(
                node,
                f"`{node.name}(...)` accepts `{params[0]}` but never "
                "consults or forwards it; the caller's deadline is "
                "silently dropped",
            )

    # -- dropped budgets at phase boundaries -----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = terminal_name(node.func)
        if (
            name in _PHASE_CALLEES
            and self._budget_in_scope()
            and not _mentions_budget(node)
        ):
            self.report(
                node,
                f"call to budget-aware phase `{name}(...)` drops the "
                "budget that is in scope; pass budget=/watch= so the "
                "phase stays bounded",
            )
        self.generic_visit(node)
