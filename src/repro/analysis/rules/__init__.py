"""The built-in rule packs (RL001–RL005)."""

from __future__ import annotations

from typing import Dict, List, Type

from ..visitor import RuleVisitor
from .budget import BudgetThreadingRule
from .generation import GenerationProtocolRule
from .locking import LockDisciplineRule
from .obs import ObsConventionsRule
from .sql import SqlSafetyRule

__all__ = ["ALL_RULES", "RULES_BY_ID", "rule_table"]

ALL_RULES: List[Type[RuleVisitor]] = [
    LockDisciplineRule,
    GenerationProtocolRule,
    BudgetThreadingRule,
    ObsConventionsRule,
    SqlSafetyRule,
]

RULES_BY_ID: Dict[str, Type[RuleVisitor]] = {
    rule.rule_id: rule for rule in ALL_RULES
}


def rule_table() -> List[Dict[str, str]]:
    """id / name / invariant of every rule pack (for ``--rules``)."""
    return [
        {
            "id": rule.rule_id,
            "name": rule.rule_name,
            "invariant": rule.invariant,
        }
        for rule in ALL_RULES
    ]
