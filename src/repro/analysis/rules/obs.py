"""RL004 obs-conventions: metrics naming, span discipline, library logging.

The observability layer's conventions (DESIGN.md):

* metric names are dot-separated ``component.object.event`` paths —
  lower-case, at least three segments, no wall-clock or per-run
  material (the registry aggregates across runs by name);
* tracer spans are always opened as context managers (``with
  tracer.span(...) as span:``) so error/timeout status and end times
  are recorded even on the exception path;
* importing the library must never configure global logging — handlers
  are installed by applications (or :func:`repro.obs.logging.configure`),
  the package root carries only a ``NullHandler``;
* public APIs take no mutable default arguments (a shared ``[]``/
  ``{}`` default is cross-call, cross-tenant state).
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet

from ..visitor import RuleVisitor, terminal_name

__all__ = ["ObsConventionsRule"]

#: ``component.object.event`` — three or more lowercase dotted segments
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){2,}$")

_INSTRUMENT_METHODS: FrozenSet[str] = frozenset({"counter", "gauge", "histogram"})

_MUTABLE_DEFAULT_CALLS: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in _MUTABLE_DEFAULT_CALLS
    return False


def _is_public(name: str) -> bool:
    return not name.startswith("_")


class ObsConventionsRule(RuleVisitor):
    rule_id = "RL004"
    rule_name = "obs-conventions"
    invariant = (
        "metric names are lowercase `component.object.event` paths; spans "
        "are opened with `with`; no logging handler is installed at import "
        "time; public APIs take no mutable default arguments"
    )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_metric_name(node)
        self._check_span(node)
        self._check_import_time_logging(node)
        self.generic_visit(node)

    # -- metric naming ---------------------------------------------------------

    def _check_metric_name(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _INSTRUMENT_METHODS:
            return
        if not node.args:
            return
        first = node.args[0]
        if not isinstance(first, ast.Constant) or not isinstance(first.value, str):
            return  # dynamic names are a documented blind spot
        name = first.value
        if not _METRIC_NAME.match(name):
            self.report(
                first,
                f"metric name {name!r} does not follow the "
                "`component.object.event` convention (>= 3 lowercase "
                "dot-separated segments)",
            )

    # -- span discipline -------------------------------------------------------

    def _check_span(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "span":
            return
        # only tracer-ish receivers: `current_tracer().span(...)`,
        # `tracer.span(...)`, `self._tracer.span(...)`
        receiver = terminal_name(func.value)
        if receiver is None or "tracer" not in receiver.lower():
            return
        if not self.is_with_context(node):
            self.report(
                node,
                "tracer span opened without a `with` context manager; the "
                "span would never close on the exception path",
            )

    # -- import-time logging ---------------------------------------------------

    def _check_import_time_logging(self, node: ast.Call) -> None:
        if not self.at_module_level:
            return
        func = node.func
        name = terminal_name(func)
        if name == "basicConfig":
            self.report(
                node,
                "logging.basicConfig(...) at import time configures the "
                "root logger for every embedding application; configure "
                "inside repro.obs.logging.configure() instead",
            )
            return
        if name == "addHandler":
            handler = node.args[0] if node.args else None
            if handler is not None and self._is_null_handler(handler):
                return  # the sanctioned library posture
            self.report(
                node,
                "logging handler installed at import time; libraries must "
                "only install NullHandler (see repro.obs.logging)",
            )

    @staticmethod
    def _is_null_handler(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            return name == "NullHandler"
        return False

    # -- mutable defaults ------------------------------------------------------

    def _check_defaults(self, node: ast.FunctionDef) -> None:
        if not _is_public(node.name):
            return
        enclosing = self.current_class
        if enclosing is not None and not _is_public(enclosing.name):
            return
        args = node.args
        annotated = [*args.posonlyargs, *args.args]
        positional_defaults = args.defaults
        offset = len(annotated) - len(positional_defaults)
        for index, default in enumerate(positional_defaults):
            if _is_mutable_default(default):
                name = annotated[offset + index].arg
                self._report_default(default, node.name, name)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and _is_mutable_default(kw_default):
                self._report_default(kw_default, node.name, arg.arg)

    def _report_default(
        self, node: ast.AST, function: str, argument: str
    ) -> None:
        self.report(
            node,
            f"mutable default argument `{argument}` of public API "
            f"`{function}(...)` is shared across calls; default to None "
            "and construct inside",
        )

    def enter_function(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_defaults(node)  # type: ignore[arg-type]
