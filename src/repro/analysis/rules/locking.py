"""RL001 lock-discipline: leaf locks, guarded attributes, COW snapshots.

The concurrency layer's contract (DESIGN.md "Concurrency hardening"):

* every mutable attribute that is ever written under a lock is
  *lock-guarded* — all other writes (outside ``__init__``) must hold the
  lock too, and multi-field reads must not be torn;
* locks are **leaf locks** — nested acquisition is forbidden unless the
  module declares the order in a module-level ``_LOCK_ORDER`` tuple;
* published copy-on-write snapshots are replaced, never mutated in
  place (an unlocked ``self._cache.clear()`` corrupts readers holding
  the snapshot).

Inference is per class and per file: an attribute becomes guarded by
being mutated inside any ``with <lock>`` block of the class.  That is
exactly how the codebase encodes its protocols, so the rule needs no
annotations — but it also means a class whose every mutation is
unlocked reports nothing (single-threaded helpers stay quiet).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set

from ..visitor import (
    INIT_METHODS,
    MUTATOR_METHODS,
    FileContext,
    RuleVisitor,
    is_lock_expr,
)

__all__ = ["LockDisciplineRule"]

#: builtins whose call over a guarded attribute copies structure — a torn
#: read outside the lock (``len``/``sum`` are atomic enough to stay quiet)
_AGGREGATES: FrozenSet[str] = frozenset(
    {"dict", "list", "tuple", "set", "frozenset", "sorted"}
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` → ``X`` (Load or Store context)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attr(node: ast.AST) -> Optional[str]:
    """The ``self.X`` attribute this statement/expression mutates, if any."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                return attr
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                attr = _self_attr(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATOR_METHODS:
            return _self_attr(node.func.value)
    return None


def _function_of(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> Optional[str]:
    """Name of the innermost function containing *node*."""
    current: Optional[ast.AST] = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current.name
        current = parents.get(current)
    return None


class LockDisciplineRule(RuleVisitor):
    rule_id = "RL001"
    rule_name = "lock-discipline"
    invariant = (
        "attributes ever mutated under a lock are only mutated (and only "
        "aggregate-read) while holding it; locks are leaf locks unless the "
        "module declares a _LOCK_ORDER; copy-on-write snapshots are swapped, "
        "never mutated in place"
    )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        #: guarded attribute names of the class currently being walked
        self._guarded: List[Set[str]] = []
        #: attrs that are COW-swapped (assigned a fresh container under lock)
        self._cow: List[Set[str]] = []
        self._declared_order = self.ctx.lock_order()

    # -- per-class inference ---------------------------------------------------

    def enter_class(self, node: ast.ClassDef) -> None:
        guarded: Set[str] = set()
        cow: Set[str] = set()
        for with_node in ast.walk(node):
            if not isinstance(with_node, (ast.With, ast.AsyncWith)):
                continue
            if not any(is_lock_expr(item.context_expr) for item in with_node.items):
                continue
            if _function_of(with_node, self.ctx.parents) in INIT_METHODS:
                continue
            for child in ast.walk(with_node):
                attr = _mutated_attr(child)
                if attr is not None:
                    guarded.add(attr)
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        name = _self_attr(target)
                        if name is not None and isinstance(
                            child.value, (ast.Dict, ast.List, ast.Set)
                        ):
                            cow.add(name)
        self._guarded.append(guarded)
        self._cow.append(cow)

    def leave_class(self, node: ast.ClassDef) -> None:
        self._guarded.pop()
        self._cow.pop()

    @property
    def _guarded_attrs(self) -> Set[str]:
        return self._guarded[-1] if self._guarded else set()

    # -- checks ----------------------------------------------------------------

    @property
    def _in_repr(self) -> bool:
        """Diagnostics (`__repr__`/`__str__`) may read approximately."""
        current = self.current_function
        return current is not None and current.name in {"__repr__", "__str__"}

    def _check_mutation(self, node: ast.AST) -> None:
        if self.in_lock or self.in_init or not self._guarded:
            return
        attr = _mutated_attr(node)
        if attr is None or attr not in self._guarded_attrs:
            return
        if attr in self._cow[-1] and isinstance(node, ast.Call):
            self.report(
                node,
                f"in-place mutation of copy-on-write snapshot `self.{attr}` "
                "outside its lock; swap in a fresh container under the lock "
                "instead",
            )
        else:
            self.report(
                node,
                f"mutation of lock-guarded attribute `self.{attr}` outside "
                "a `with <lock>` scope",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_mutation(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_mutation(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_mutation(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_mutation(node)
        # aggregate (torn) read: dict(self._stats) outside the lock copies
        # a structure another thread is mutating field-by-field
        if (
            not self.in_lock
            and not self.in_init
            and not self._in_repr
            and self._guarded
            and isinstance(node.func, ast.Name)
            and node.func.id in _AGGREGATES
            and len(node.args) == 1
        ):
            attr = _self_attr(node.args[0])
            if attr is not None and attr in self._guarded_attrs:
                self.report(
                    node,
                    f"aggregate read of lock-guarded `self.{attr}` outside "
                    "its lock (torn read); snapshot it under the lock",
                )
        self.generic_visit(node)

    # multi-attribute reads: one expression reading two guarded fields
    # outside the lock observes them at different instants
    def _check_torn_expression(self, node: ast.stmt, value: ast.AST) -> None:
        if self.in_lock or self.in_init or self._in_repr or not self._guarded:
            return
        guarded = self._guarded_attrs
        read: Set[str] = set()
        for child in ast.walk(value):
            if isinstance(child, ast.Attribute) and isinstance(
                child.ctx, ast.Load
            ):
                attr = _self_attr(child)
                if attr is not None and attr in guarded:
                    read.add(attr)
        if len(read) >= 2:
            names = ", ".join(sorted(f"self.{attr}" for attr in read))
            self.report(
                node,
                f"reads {names} in one expression outside their lock "
                "(values may be torn); read a consistent snapshot instead",
            )

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._check_torn_expression(node, node.value)
        self.generic_visit(node)

    # -- leaf-lock / declared-order nesting ------------------------------------

    def enter_lock(self, node: ast.With, lock_texts: List[str]) -> None:
        if not self.lock_stack:
            return
        outer = self.lock_stack[-1]
        for inner in lock_texts:
            if inner == outer:
                continue  # re-entrant acquisition of the same RLock
            if (
                outer in self._declared_order
                and inner in self._declared_order
                and self._declared_order.index(outer)
                < self._declared_order.index(inner)
            ):
                continue
            self.report(
                node,
                f"nested lock acquisition `{inner}` while holding `{outer}` "
                "violates leaf-lock discipline (declare the order in a "
                "module-level _LOCK_ORDER if intentional)",
            )

    def __repr__(self) -> str:
        return f"<{self.rule_id} {self.rule_name} guarded={self._guarded_attrs}>"
