"""Tests for repro.obs.trace — spans, nesting, statuses, export, NullTracer."""

import json

import pytest

from repro.errors import TimeoutExceeded
from repro.obs.schema import validate_trace_lines
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    render_span_tree,
    set_tracer,
    use_tracer,
)


def test_spans_nest_and_record_parentage():
    tracer = Tracer("demo")
    with tracer.span("outer") as outer:
        outer.set("k", 1)
        with tracer.span("inner") as inner:
            inner.annotate(a=1, b=2)
        with tracer.span("sibling"):
            pass
    assert [s.name for s in tracer.spans] == ["outer", "inner", "sibling"]
    assert tracer.roots == [tracer.spans[0]]
    assert tracer.spans[1].parent_id == tracer.spans[0].span_id
    assert tracer.spans[2].parent_id == tracer.spans[0].span_id
    assert [c.name for c in tracer.spans[0].children] == ["inner", "sibling"]
    assert tracer.spans[0].depth == 0 and tracer.spans[1].depth == 1
    assert tracer.spans[1].attributes == {"a": 1, "b": 2}
    assert not tracer.open_spans


def test_span_ids_are_deterministic():
    def run():
        tracer = Tracer("same")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        return [s.span_id for s in tracer.spans]

    assert run() == run() == ["s0001", "s0002"]


def test_exception_closes_span_with_error_status():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("stage"):
            raise ValueError("boom")
    (span,) = tracer.spans
    assert span.status == "error"
    assert span.detail == "ValueError: boom"
    assert span.end_s is not None
    assert not tracer.open_spans


def test_timeout_closes_span_with_timeout_status():
    tracer = Tracer()
    with pytest.raises(TimeoutExceeded):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise TimeoutExceeded(0.1, 0.2, task="inner stage")
    inner = tracer.spans[1]
    outer = tracer.spans[0]
    assert inner.status == "timeout"
    assert outer.status == "timeout"  # propagates through every open span
    assert not tracer.open_spans


def test_set_status_overrides_but_exception_wins():
    tracer = Tracer()
    with tracer.span("soft-fail") as span:
        span.set_status("error", "handled internally")
    assert tracer.spans[0].status == "error"
    assert tracer.spans[0].detail == "handled internally"
    with pytest.raises(RuntimeError):
        with tracer.span("hard-fail") as span:
            span.set_status("ok")
            raise RuntimeError("actual failure")
    assert tracer.spans[1].status == "error"


def test_jsonlines_export_round_trips_and_validates():
    tracer = Tracer("export")
    with tracer.span("a", size=3):
        with tracer.span("b"):
            pass
    text = tracer.to_jsonlines()
    records = [json.loads(line) for line in text.splitlines()]
    assert records[0] == {"kind": "trace", "name": "export", "spans": 2}
    assert records[1]["name"] == "a"
    assert records[1]["attributes"] == {"size": 3}
    assert records[2]["parent"] == records[1]["id"]
    assert validate_trace_lines(text) == []


def test_export_after_failure_is_still_valid():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise ValueError("mid-stage")
    assert validate_trace_lines(tracer.to_jsonlines()) == []


def test_validator_flags_dangling_and_orphan_spans():
    bad = "\n".join(
        [
            json.dumps({"kind": "trace", "name": "t", "spans": 2}),
            json.dumps(
                {
                    "kind": "span",
                    "id": "s0001",
                    "parent": "s9999",
                    "name": "orphan",
                    "start_s": 0.0,
                    "elapsed_s": 0.1,
                    "status": "open",
                    "attributes": {},
                }
            ),
        ]
    )
    problems = validate_trace_lines(bad)
    assert any("dangling" in p for p in problems)
    assert any("not declared earlier" in p for p in problems)


def test_null_tracer_is_the_default_and_allocation_free():
    assert current_tracer() is NULL_TRACER
    assert NULL_TRACER.enabled is False
    # The no-overhead contract: every span is the one shared no-op object.
    a = NULL_TRACER.span("x", attr=1)
    b = NULL_TRACER.span("y")
    assert a is b
    with a as span:
        span.set("k", "v")
        span.annotate(k2="v2")
        span.set_status("error", "ignored")
    # Exceptions still propagate through the no-op span.
    with pytest.raises(ValueError):
        with NullTracer().span("z"):
            raise ValueError("propagates")


def test_use_tracer_installs_and_restores():
    tracer = Tracer("scoped")
    assert current_tracer() is NULL_TRACER
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with use_tracer(None):
            assert current_tracer() is NULL_TRACER
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER
    previous = set_tracer(tracer)
    assert previous is NULL_TRACER
    assert set_tracer(previous) is tracer
    assert current_tracer() is NULL_TRACER


def test_render_span_tree_shows_timing_status_and_attributes():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("root", rows=7):
            with tracer.span("child"):
                raise ValueError("bad")
    rendered = render_span_tree(tracer)
    lines = rendered.splitlines()
    assert lines[0].startswith("root ")
    assert "[rows=7]" in lines[0]
    assert "└─ child" in lines[1]
    assert "!error (ValueError: bad)" in lines[1]
    assert "ms" in lines[0]
