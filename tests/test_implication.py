"""Unit tests for the logical-implication service."""

import itertools
import random

import pytest

from repro.baselines.saturation import Saturation
from repro.core import ImplicationChecker, entails_without_closure
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
    RoleInclusion,
    negate,
    parse_axiom,
    parse_tbox,
)
from tests.conftest import make_random_tbox


def checker_for(text):
    return ImplicationChecker.for_tbox(parse_tbox(text))


def test_positive_basic_inclusions(county_tbox):
    checker = ImplicationChecker.for_tbox(county_tbox)
    assert checker.entails(parse_axiom("Municipality isa County"))
    assert checker.entails(parse_axiom("Municipality isa exists isPartOf"))
    assert checker.entails(parse_axiom("Municipality isa exists locatedIn"))
    assert not checker.entails(parse_axiom("County isa Municipality"))


def test_qualified_entailments(county_tbox):
    checker = ImplicationChecker.for_tbox(county_tbox)
    assert checker.entails(parse_axiom("County isa exists isPartOf . State"))
    assert checker.entails(parse_axiom("Municipality isa exists locatedIn . State"))
    assert checker.entails(parse_axiom("State isa exists locatedIn^- . County"))
    assert not checker.entails(parse_axiom("State isa exists isPartOf . County"))


def test_negative_entailments(county_tbox):
    checker = ImplicationChecker.for_tbox(county_tbox)
    assert checker.entails(parse_axiom("Municipality isa not State"))
    assert checker.entails(parse_axiom("State isa not Municipality"))
    assert not checker.entails(parse_axiom("County isa not Municipality"))


def test_role_entailments(county_tbox):
    checker = ImplicationChecker.for_tbox(county_tbox)
    is_part_of, located_in = AtomicRole("isPartOf"), AtomicRole("locatedIn")
    assert checker.entails(RoleInclusion(is_part_of, located_in))
    assert checker.entails(parse_axiom("isPartOf^- isa locatedIn^-"))
    assert not checker.entails(RoleInclusion(located_in, is_part_of))


def test_unknown_predicates_behave():
    checker = checker_for("A isa B")
    ghost = AtomicConcept("Ghost")
    assert checker.entails(ConceptInclusion(ghost, ghost))
    assert not checker.entails(ConceptInclusion(ghost, AtomicConcept("A")))
    assert not checker.entails(ConceptInclusion(AtomicConcept("A"), ghost))


def test_unsat_lhs_entails_everything():
    checker = checker_for("Dead isa X\nDead isa Y\nX isa not Y\nconcept Z\nrole P")
    dead = AtomicConcept("Dead")
    assert checker.entails(ConceptInclusion(dead, AtomicConcept("Z")))
    assert checker.entails(
        ConceptInclusion(dead, QualifiedExistential(AtomicRole("P"), AtomicConcept("Z")))
    )
    assert checker.entails(ConceptInclusion(dead, NegatedConcept(dead)))


def test_domain_disjointness_gives_role_disjointness():
    checker = checker_for(
        "role P, R\nexists P isa X\nexists R isa Y\nX isa not Y"
    )
    P, R = AtomicRole("P"), AtomicRole("R")
    assert checker.entails(RoleInclusion(P, NegatedRole(R)))
    assert checker.entails(RoleInclusion(InverseRole(P), NegatedRole(InverseRole(R))))


def test_entails_without_closure_matches_checker():
    rng = random.Random(5)
    for _ in range(20):
        tbox = make_random_tbox(rng, n_concepts=3, n_roles=1, n_axioms=6)
        checker = ImplicationChecker.for_tbox(tbox)
        concepts = [AtomicConcept(f"C{i}") for i in range(3)]
        basics = concepts + [
            ExistentialRole(AtomicRole("P0")),
            ExistentialRole(InverseRole(AtomicRole("P0"))),
        ]
        for lhs, rhs in itertools.product(basics, basics):
            axiom = ConceptInclusion(lhs, rhs)
            assert entails_without_closure(tbox, axiom) == checker.entails(axiom)


def test_doctest_example():
    checker = ImplicationChecker.for_tbox(parse_tbox("A isa B\nB isa C"))
    assert checker.entails(parse_axiom("A isa C"))
    assert not checker.entails(parse_axiom("C isa A"))


@pytest.mark.parametrize("seed", range(25))
def test_agrees_with_saturation_on_all_shapes(seed):
    tbox = make_random_tbox(random.Random(seed), n_concepts=3, n_roles=2, n_axioms=7)
    checker = ImplicationChecker.for_tbox(tbox)
    saturation = Saturation(tbox)
    concepts = [AtomicConcept(f"C{i}") for i in range(3)]
    roles = [AtomicRole(f"P{i}") for i in range(2)]
    basic_roles = roles + [InverseRole(r) for r in roles]
    basics = concepts + [ExistentialRole(q) for q in basic_roles]
    for lhs, rhs in itertools.product(basics, repeat=2):
        axiom = ConceptInclusion(lhs, rhs)
        assert checker.entails(axiom) == saturation.entails_pair(lhs, rhs), axiom
        negative = ConceptInclusion(lhs, negate(rhs))
        assert checker.entails(negative) == saturation.entails_negative(lhs, rhs), negative
    for lhs in basics:
        for role in basic_roles:
            for filler in concepts:
                axiom = ConceptInclusion(lhs, QualifiedExistential(role, filler))
                assert checker.entails(axiom) == saturation.entails_qualified(
                    lhs, role, filler
                ), axiom
    for first, second in itertools.product(basic_roles, repeat=2):
        axiom = RoleInclusion(first, second)
        assert checker.entails(axiom) == saturation.entails_pair(first, second), axiom
        negative = RoleInclusion(first, NegatedRole(second))
        assert checker.entails(negative) == saturation.entails_negative(
            first, second
        ), negative
