"""Multi-threaded hammer tests for the concurrency-hardened engine.

Each test drives shared state from many threads and asserts the
invariants the hardening is supposed to buy: no lost counter updates,
no torn cache entries, single-flight classification, and — the big one
— an :class:`~repro.obda.system.OBDASystem` whose concurrent answers
always match a serial oracle over the final state.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.dllite.abox import ABox, ConceptAssertion, Individual, RoleAssertion
from repro.dllite.axioms import ConceptInclusion
from repro.dllite.syntax import AtomicConcept, AtomicRole, ExistentialRole
from repro.dllite.tbox import TBox
from repro.obda.system import OBDASystem
from repro.obs.metrics import global_metrics
from repro.perf.cache import CacheStats, ClassificationCache, LRUCache
from repro.runtime.concurrency import AtomicCounter, SingleFlight

THREADS = 8


def _run_threads(target, count=THREADS):
    """Start *count* threads on *target(index)* and join them all."""
    errors = []

    def runner(index):
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
        assert not thread.is_alive(), "worker thread did not finish (deadlock?)"
    if errors:
        raise errors[0]
    return threads


# -- primitives ---------------------------------------------------------------


def test_atomic_counter_loses_no_increments():
    counter = AtomicCounter()
    increments = 2000

    def work(_index):
        for _ in range(increments):
            counter.increment()

    _run_threads(work)
    assert counter.value == THREADS * increments


def test_cache_stats_counters_are_atomic():
    stats = CacheStats(name="hammered")
    rounds = 2000

    def work(_index):
        for _ in range(rounds):
            stats.record_hit()
            stats.record_miss()

    _run_threads(work)
    hits, misses, _, _ = stats.snapshot()
    assert hits == THREADS * rounds
    assert misses == THREADS * rounds
    assert stats.lookups == 2 * THREADS * rounds


def test_lru_cache_survives_concurrent_mixed_use():
    cache = LRUCache(maxsize=32, name="hammered-lru")
    rounds = 1500

    def work(index):
        rng = random.Random(index)
        for turn in range(rounds):
            key = rng.randrange(64)
            if rng.random() < 0.5:
                cache.put(key, (index, turn))
            else:
                value = cache.get(key)
                if value is not None:
                    assert isinstance(value, tuple) and len(value) == 2
            if turn % 500 == 0:
                cache.invalidate()

    _run_threads(work)
    assert len(cache) <= 32
    hits, misses, evictions, invalidations = cache.stats.snapshot()
    # every get recorded exactly once, no torn bookkeeping
    assert hits + misses <= THREADS * rounds
    assert invalidations >= 0 and evictions >= 0


def test_single_flight_runs_leader_once_and_shares():
    flights = SingleFlight()
    barrier = threading.Barrier(THREADS)
    computed = AtomicCounter()
    release = threading.Event()
    results = []
    results_lock = threading.Lock()

    def compute():
        computed.increment()
        release.wait(10.0)
        return "value"

    def work(_index):
        barrier.wait(10.0)
        if computed.value == 0:
            # make sure somebody is already inside before followers join
            pass
        result, leader = flights.do("key", compute, timeout=10.0)
        with results_lock:
            results.append((result, leader))

    threads = [
        threading.Thread(target=work, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    # let every thread reach the flight, then release the leader
    import time

    deadline = time.monotonic() + 5.0
    while computed.value == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    time.sleep(0.05)
    release.set()
    for thread in threads:
        thread.join(10.0)
        assert not thread.is_alive()

    assert computed.value >= 1
    assert all(result == "value" for result, _ in results)
    leaders = [leader for _, leader in results if leader]
    assert len(leaders) == computed.value  # one leader per actual run


def test_single_flight_propagates_leader_exception():
    flights = SingleFlight()

    def boom():
        raise ValueError("leader failed")

    with pytest.raises(ValueError):
        flights.do("key", boom)
    assert flights.in_flight() == 0


# -- single-flight classification --------------------------------------------


def _diamond_tbox(width=12):
    top = AtomicConcept("Top")
    axioms = []
    for index in range(width):
        mid = AtomicConcept(f"Mid{index}")
        axioms.append(ConceptInclusion(AtomicConcept(f"Leaf{index}"), mid))
        axioms.append(ConceptInclusion(mid, top))
    return TBox(axioms, name="diamond")


def test_concurrent_classification_is_single_flight():
    cache = ClassificationCache()
    tbox = _diamond_tbox()
    computes = global_metrics().counter("perf.classification.computes")
    before = computes.value
    barrier = threading.Barrier(THREADS)
    results = []
    results_lock = threading.Lock()

    def work(_index):
        barrier.wait(10.0)
        classification = cache.classify(tbox)
        with results_lock:
            results.append(classification)

    _run_threads(work)
    # the reasoner ran exactly once; every caller shares that result
    assert computes.value - before == 1
    assert len(results) == THREADS
    assert all(result is results[0] for result in results)


def test_generation_bump_is_atomic_under_concurrent_inserts():
    abox = ABox()
    concept = AtomicConcept("C")
    per_thread = 300

    def work(index):
        for turn in range(per_thread):
            abox.add(ConceptAssertion(concept, Individual(f"t{index}_{turn}")))

    _run_threads(work)
    assert abox.generation == THREADS * per_thread
    assert len(abox) == THREADS * per_thread


def test_tbox_generation_is_atomic_under_concurrent_adds():
    tbox = TBox()
    per_thread = 100

    def work(index):
        for turn in range(per_thread):
            tbox.add(
                ConceptInclusion(
                    AtomicConcept(f"A{index}_{turn}"),
                    AtomicConcept(f"B{index}_{turn}"),
                )
            )

    _run_threads(work)
    assert len(tbox) == THREADS * per_thread


# -- the hammer: one system, mixed queries and updates ------------------------

_PERSON = AtomicConcept("Person")
_PROFESSOR = AtomicConcept("Professor")
_TEACHES = AtomicRole("teaches")

_HAMMER_QUERIES = [
    "q(x) :- Person(x)",
    "q(x) :- Professor(x)",
    "q(x, y) :- teaches(x, y)",
]


def _hammer_system():
    tbox = TBox(
        [
            ConceptInclusion(_PROFESSOR, _PERSON),
            ConceptInclusion(ExistentialRole(_TEACHES), _PROFESSOR),
        ],
        name="hammer",
    )
    abox = ABox([ConceptAssertion(_PROFESSOR, Individual("seed"))])
    return OBDASystem(tbox, abox=abox), tbox, abox


def test_hammer_mixed_queries_and_updates_match_serial_oracle():
    system, tbox, abox = _hammer_system()
    per_thread = 25

    def work(index):
        rng = random.Random(index)
        for turn in range(per_thread):
            roll = rng.random()
            if roll < 0.5:
                answers = system.certain_answers(
                    rng.choice(_HAMMER_QUERIES), check_consistency=False
                )
                assert isinstance(answers, (set, frozenset))
            elif roll < 0.9:
                if rng.random() < 0.5:
                    abox.add(
                        ConceptAssertion(
                            _PROFESSOR, Individual(f"t{index}_p{turn}")
                        )
                    )
                else:
                    abox.add(
                        RoleAssertion(
                            _TEACHES,
                            Individual(f"t{index}_s{turn}"),
                            Individual(f"t{index}_o{turn}"),
                        )
                    )
            else:
                tbox.add(
                    ConceptInclusion(
                        AtomicConcept(f"Specialist{index}_{turn}"), _PROFESSOR
                    )
                )

    _run_threads(work)

    # serial oracle over the final (quiesced) state: a fresh cache-free
    # system must agree with the hammered system on every pool query
    oracle = OBDASystem(
        TBox(list(tbox.axioms), name="oracle"),
        abox=abox.copy(),
        enable_caches=False,
    )
    for query in _HAMMER_QUERIES:
        hammered = system.certain_answers(query, check_consistency=False)
        expected = oracle.certain_answers(query, check_consistency=False)
        assert hammered == expected, f"post-soak divergence on {query!r}"


def test_hammer_presto_agrees_with_serial_oracle():
    system, tbox, abox = _hammer_system()

    def work(index):
        for turn in range(10):
            if turn % 3 == 0:
                abox.add(
                    ConceptAssertion(_PROFESSOR, Individual(f"t{index}_{turn}"))
                )
            else:
                system.certain_answers(
                    "q(x) :- Person(x)", method="presto", check_consistency=False
                )

    _run_threads(work)
    oracle = OBDASystem(
        TBox(list(tbox.axioms), name="oracle"),
        abox=abox.copy(),
        enable_caches=False,
    )
    assert system.certain_answers(
        "q(x) :- Person(x)", method="presto", check_consistency=False
    ) == oracle.certain_answers("q(x) :- Person(x)", check_consistency=False)
