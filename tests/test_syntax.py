"""Unit tests for DL-Lite expressions (repro.dllite.syntax)."""

import pytest

from repro.dllite.syntax import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeDomain,
    ExistentialRole,
    InverseRole,
    NegatedAttribute,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
    exists,
    inverse_of,
    is_basic_concept,
    is_basic_role,
    is_general_concept,
    is_general_role,
    negate,
    to_ascii,
)


def test_expression_equality_is_structural():
    assert AtomicConcept("A") == AtomicConcept("A")
    assert AtomicConcept("A") != AtomicConcept("B")
    assert ExistentialRole(AtomicRole("P")) == ExistentialRole(AtomicRole("P"))
    assert InverseRole(AtomicRole("P")) != AtomicRole("P")


def test_expressions_are_hashable_value_objects():
    seen = {AtomicConcept("A"), AtomicConcept("A"), ExistentialRole(AtomicRole("P"))}
    assert len(seen) == 2


def test_inverse_of_is_involutive():
    role = AtomicRole("P")
    assert inverse_of(role) == InverseRole(role)
    assert inverse_of(inverse_of(role)) == role


def test_inverse_of_rejects_non_roles():
    with pytest.raises(TypeError):
        inverse_of(AtomicConcept("A"))


def test_exists_builds_unqualified_and_qualified():
    role = AtomicRole("P")
    assert exists(role) == ExistentialRole(role)
    assert exists(role, AtomicConcept("A")) == QualifiedExistential(
        role, AtomicConcept("A")
    )


def test_negate_is_involutive_per_sort():
    concept = AtomicConcept("A")
    role = AtomicRole("P")
    attribute = AtomicAttribute("u")
    assert negate(concept) == NegatedConcept(concept)
    assert negate(negate(concept)) == concept
    assert negate(role) == NegatedRole(role)
    assert negate(negate(role)) == role
    assert negate(attribute) == NegatedAttribute(attribute)
    assert negate(negate(attribute)) == attribute


def test_negate_rejects_qualified_existential():
    with pytest.raises(TypeError):
        negate(QualifiedExistential(AtomicRole("P"), AtomicConcept("A")))


def test_str_uses_dl_notation():
    expr = QualifiedExistential(InverseRole(AtomicRole("isPartOf")), AtomicConcept("County"))
    assert str(expr) == "∃isPartOf⁻.County"
    assert str(NegatedConcept(AtomicConcept("State"))) == "¬State"
    assert str(AttributeDomain(AtomicAttribute("salary"))) == "δ(salary)"


def test_to_ascii_round_trip_forms():
    assert to_ascii(ExistentialRole(InverseRole(AtomicRole("P")))) == "exists P^-"
    assert (
        to_ascii(QualifiedExistential(AtomicRole("P"), AtomicConcept("A")))
        == "exists P . A"
    )
    assert to_ascii(AttributeDomain(AtomicAttribute("u"))) == "domain(u)"
    assert to_ascii(NegatedRole(InverseRole(AtomicRole("P")))) == "not P^-"


def test_sort_predicates():
    assert is_basic_concept(AtomicConcept("A"))
    assert is_basic_concept(ExistentialRole(AtomicRole("P")))
    assert is_basic_concept(AttributeDomain(AtomicAttribute("u")))
    assert not is_basic_concept(NegatedConcept(AtomicConcept("A")))
    assert is_general_concept(NegatedConcept(AtomicConcept("A")))
    assert is_general_concept(QualifiedExistential(AtomicRole("P"), AtomicConcept("A")))
    assert is_basic_role(InverseRole(AtomicRole("P")))
    assert not is_basic_role(NegatedRole(AtomicRole("P")))
    assert is_general_role(NegatedRole(AtomicRole("P")))
    assert not is_basic_role(AtomicConcept("A"))


def test_role_inverse_property_shortcuts():
    role = AtomicRole("P")
    assert role.inverse == InverseRole(role)
    assert role.inverse.inverse == role
    assert role.inverse.name == "P"


def test_attribute_domain_shortcut():
    attribute = AtomicAttribute("salary")
    assert attribute.domain == AttributeDomain(attribute)
