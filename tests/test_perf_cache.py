"""LRU cache behaviour + property-based canonicalization/pruning checks.

The property tests reuse the :mod:`repro.testkit` generators: seeded
random TBoxes, ABoxes and query batches.  Two invariants are asserted
over many rounds:

* **canonicalization soundness** — alpha-equivalent queries (renamed
  variables, shuffled atoms, reordered disjuncts) get identical cache
  keys, and queries that share a key have identical certain answers;
* **pruning soundness** — dropping subsumed disjuncts from a PerfectRef
  rewriting never changes the certain answers.
"""

from __future__ import annotations

import random

import pytest

from repro.obda.evaluation import ABoxExtents, evaluate_ucq
from repro.obda.queries import Atom, ConjunctiveQuery, UnionQuery, Variable
from repro.obda.rewriting.perfectref import perfect_ref
from repro.perf import LRUCache, cq_key, prune_ucq, ucq_key
from repro.testkit.generators import (
    FuzzProfile,
    random_abox,
    random_profile_tbox,
    random_queries,
)

SIZES = FuzzProfile(
    max_concepts=12,
    max_roles=4,
    max_individuals=10,
    max_assertions=30,
    max_queries=4,
    max_query_atoms=3,
)


# -- LRU mechanics ------------------------------------------------------------


def test_lru_bounds_and_evicts_in_order():
    cache = LRUCache(maxsize=2, name="t")
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": "b" is now the LRU entry
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_lru_stats_and_invalidate():
    cache = LRUCache(maxsize=4, name="t")
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.get("missing") is None
    stats = cache.stats
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5
    assert cache.invalidate() == 1
    assert len(cache) == 0
    assert stats.invalidations == 1
    # peek never touches the counters
    cache.put("k", "v")
    assert cache.peek("k") == "v"
    assert stats.hits == 1


def test_lru_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)


# -- alpha-equivalence --------------------------------------------------------


def _alpha_variant(cq: ConjunctiveQuery, rng: random.Random) -> ConjunctiveQuery:
    """Rename every variable and shuffle the atom order."""
    renaming = {}
    for atom in cq.atoms:
        for term in atom.args:
            if isinstance(term, Variable) and term not in renaming:
                renaming[term] = Variable(f"renamed_{len(renaming)}")
    atoms = [
        Atom(atom.predicate, tuple(renaming.get(t, t) for t in atom.args))
        for atom in cq.atoms
    ]
    rng.shuffle(atoms)
    answer_vars = tuple(renaming.get(v, v) for v in cq.answer_vars)
    return ConjunctiveQuery(answer_vars, atoms, name=cq.name)


def test_alpha_equivalent_queries_share_cache_keys():
    rng = random.Random(11)
    for _ in range(25):
        tbox = random_profile_tbox(rng, SIZES)
        for query in random_queries(rng, tbox, SIZES):
            variant = UnionQuery(
                [_alpha_variant(cq, rng) for cq in reversed(list(query))],
                name="variant",
            )
            assert ucq_key(query) == ucq_key(variant)
            for cq in query:
                assert cq_key(cq) == cq_key(_alpha_variant(cq, rng))


def test_distinct_shapes_get_distinct_keys():
    x, y = Variable("x"), Variable("y")
    chain = ConjunctiveQuery((x,), [Atom("P", (x, y)), Atom("C", (y,))])
    loop = ConjunctiveQuery((x,), [Atom("P", (x, x)), Atom("C", (x,))])
    assert cq_key(chain) != cq_key(loop)


def test_equal_keys_imply_equal_answers():
    rng = random.Random(23)
    for _ in range(15):
        tbox = random_profile_tbox(rng, SIZES)
        abox = random_abox(rng, tbox, SIZES)
        extents = ABoxExtents(abox)
        by_key = {}
        for query in random_queries(rng, tbox, SIZES):
            variant = UnionQuery(
                [_alpha_variant(cq, rng) for cq in query], name="variant"
            )
            for candidate in (query, variant):
                key = ucq_key(candidate)
                answers = evaluate_ucq(candidate, extents)
                if key in by_key:
                    assert by_key[key] == answers
                else:
                    by_key[key] = answers


# -- pruning soundness --------------------------------------------------------


def test_pruning_never_changes_certain_answers():
    rng = random.Random(37)
    for _ in range(15):
        tbox = random_profile_tbox(rng, SIZES)
        abox = random_abox(rng, tbox, SIZES)
        extents = ABoxExtents(abox)
        for query in random_queries(rng, tbox, SIZES):
            raw = perfect_ref(query, tbox, minimize=False)
            pruned = prune_ucq(raw)
            assert pruned.after <= pruned.before
            assert evaluate_ucq(pruned.ucq, extents) == evaluate_ucq(raw, extents)
