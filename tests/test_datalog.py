"""Unit tests for the semi-naive datalog engine."""

import pytest

from repro.dllite import (
    ABox,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    RoleAssertion,
)
from repro.errors import UnknownPredicate
from repro.obda import ABoxExtents, parse_cq
from repro.obda.datalog import Program, ProgramExtents, Rule, evaluate_program
from repro.obda.queries import Atom, Constant, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c, d = (Individual(n) for n in "abcd")


def edge_extents(*pairs):
    abox = ABox([RoleAssertion(AtomicRole("edge"), s, t) for s, t in pairs])
    return ABoxExtents(abox)


def rule(head_text, body_text):
    parsed = parse_cq(f"{head_text} :- {body_text}")
    return Rule(Atom(parsed.name, tuple(parsed.answer_vars)), parsed.atoms)


def test_rule_safety_checked():
    with pytest.raises(UnknownPredicate):
        Rule(Atom("p", (x, y)), (Atom("q", (x,)),))
    with pytest.raises(UnknownPredicate):
        Rule(Atom("p", (x,)), ())


def test_single_flat_rule():
    program = Program([rule("reach(x, y)", "edge(x, y)")])
    idb = evaluate_program(program, edge_extents((a, b), (b, c)))
    assert idb["reach"] == {(a, b), (b, c)}


def test_transitive_closure_recursion():
    program = Program(
        [
            rule("reach(x, y)", "edge(x, y)"),
            rule("reach(x, z)", "edge(x, y), reach(y, z)"),
        ]
    )
    idb = evaluate_program(program, edge_extents((a, b), (b, c), (c, d)))
    assert idb["reach"] == {
        (a, b), (b, c), (c, d),
        (a, c), (b, d),
        (a, d),
    }


def test_cycle_terminates():
    program = Program(
        [
            rule("reach(x, y)", "edge(x, y)"),
            rule("reach(x, z)", "reach(x, y), reach(y, z)"),
        ]
    )
    idb = evaluate_program(program, edge_extents((a, b), (b, a)))
    assert idb["reach"] == {(a, b), (b, a), (a, a), (b, b)}


def test_mutual_recursion():
    program = Program(
        [
            rule("even(x, y)", "edge(x, y), start(x)"),
            rule("odd(x, z)", "even(x, y), edge(y, z)"),
            rule("even(x, z)", "odd(x, y), edge(y, z)"),
        ]
    )
    abox = ABox(
        [
            RoleAssertion(AtomicRole("edge"), a, b),
            RoleAssertion(AtomicRole("edge"), b, c),
            RoleAssertion(AtomicRole("edge"), c, d),
            ConceptAssertion(AtomicConcept("start"), a),
        ]
    )
    # 'start' is unary — represent via a concept atom in the body
    program = Program(
        [
            Rule(Atom("even", (x, y)), (Atom("edge", (x, y)), Atom("start", (x,)))),
            Rule(Atom("odd", (x, z)), (Atom("even", (x, y)), Atom("edge", (y, z)))),
            Rule(Atom("even", (x, z)), (Atom("odd", (x, y)), Atom("edge", (y, z)))),
        ]
    )
    idb = evaluate_program(program, ABoxExtents(abox))
    assert idb["even"] == {(a, b), (a, d)}
    assert idb["odd"] == {(a, c)}


def test_constants_in_rules():
    program = Program(
        [
            Rule(Atom("from_a", (y,)), (Atom("edge", (Constant("a"), y)),)),
            Rule(Atom("tagged", (x, Constant("hit"))), (Atom("from_a", (x,)),)),
        ]
    )
    idb = evaluate_program(program, edge_extents((a, b), (b, c)))
    assert idb["from_a"] == {(b,)}
    assert idb["tagged"] == {(b, "hit")}


def test_program_predicate_partition():
    program = Program(
        [
            rule("reach(x, y)", "edge(x, y)"),
            rule("far(x, z)", "reach(x, y), reach(y, z)"),
        ]
    )
    assert program.idb_predicates() == {"reach", "far"}
    assert program.edb_predicates() == {"edge"}


def test_program_extents_provider_lazily_evaluates():
    program = Program(
        [
            rule("reach(x, y)", "edge(x, y)"),
            rule("reach(x, z)", "edge(x, y), reach(y, z)"),
        ]
    )
    provider = ProgramExtents(program, edge_extents((a, b), (b, c)))
    assert provider.extent("edge", 2) == {(a, b), (b, c)}  # EDB falls through
    assert provider.extent("reach", 2) == {(a, b), (b, c), (a, c)}


def test_join_on_repeated_variables():
    program = Program([Rule(Atom("loop", (x,)), (Atom("edge", (x, x)),))])
    idb = evaluate_program(program, edge_extents((a, a), (a, b)))
    assert idb["loop"] == {(a,)}
