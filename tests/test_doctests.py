"""Run the executable examples embedded in docstrings."""

import doctest

import pytest

import repro
import repro.core.classifier
import repro.dllite
import repro.obda.sql.database
import repro.obda.sparql


@pytest.mark.parametrize(
    "module",
    [
        repro,
        repro.dllite,
        repro.core.classifier,
        repro.obda.sql.database,
        repro.obda.sparql,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
