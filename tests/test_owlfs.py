"""Unit tests for the OWL 2 QL functional-syntax reader/writer."""

import pytest

from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeAssertion,
    AttributeDomain,
    ConceptAssertion,
    ConceptInclusion,
    ExistentialRole,
    FunctionalRole,
    Individual,
    InverseRole,
    NegatedConcept,
    QualifiedExistential,
    RoleAssertion,
    RoleInclusion,
    parse_owl_functional,
    serialize_owl_functional,
)
from repro.errors import LanguageViolation

DOC = """
Prefix(:=<http://example.org/uni#>)
Ontology(<http://example.org/uni>
  Declaration(Class(:Professor))
  Declaration(Class(:Course))
  Declaration(ObjectProperty(:teaches))
  Declaration(DataProperty(:salary))
  SubClassOf(:Professor ObjectSomeValuesFrom(:teaches :Course))
  SubClassOf(ObjectSomeValuesFrom(ObjectInverseOf(:teaches) owl:Thing) :Course)
  ObjectPropertyDomain(:teaches :Professor)
  ObjectPropertyRange(:teaches :Course)
  DisjointClasses(:Professor :Course)
  SubObjectPropertyOf(:teaches :involvedWith)
  DataPropertyDomain(:salary :Professor)
  FunctionalObjectProperty(:teaches)
  ClassAssertion(:Professor :ada)
  ObjectPropertyAssertion(:teaches :ada :logic)
  DataPropertyAssertion(:salary :ada "100"^^xsd:integer)
)
"""


def test_parse_full_document():
    ontology = parse_owl_functional(DOC)
    tbox = ontology.tbox
    teaches = AtomicRole("teaches")
    assert ConceptInclusion(
        AtomicConcept("Professor"),
        QualifiedExistential(teaches, AtomicConcept("Course")),
    ) in tbox
    assert ConceptInclusion(
        ExistentialRole(InverseRole(teaches)), AtomicConcept("Course")
    ) in tbox
    assert ConceptInclusion(
        ExistentialRole(teaches), AtomicConcept("Professor")
    ) in tbox
    assert ConceptInclusion(
        AtomicConcept("Professor"), NegatedConcept(AtomicConcept("Course"))
    ) in tbox
    assert RoleInclusion(teaches, AtomicRole("involvedWith")) in tbox
    assert ConceptInclusion(
        AttributeDomain(AtomicAttribute("salary")), AtomicConcept("Professor")
    ) in tbox
    assert FunctionalRole(teaches) in tbox


def test_parse_abox_assertions():
    ontology = parse_owl_functional(DOC)
    ada, logic = Individual("ada"), Individual("logic")
    assert ConceptAssertion(AtomicConcept("Professor"), ada) in ontology.abox
    assert RoleAssertion(AtomicRole("teaches"), ada, logic) in ontology.abox
    assert AttributeAssertion(AtomicAttribute("salary"), ada, 100) in ontology.abox


def test_declarations_reach_signature():
    ontology = parse_owl_functional(
        "Ontology(<http://x> Declaration(Class(:Lonely)))"
    )
    assert AtomicConcept("Lonely") in ontology.signature


def test_inverse_object_property_assertion_is_reoriented():
    ontology = parse_owl_functional(
        "Ontology(<http://x> "
        "ObjectPropertyAssertion(ObjectInverseOf(:p) :a :b))"
    )
    assert RoleAssertion(AtomicRole("p"), Individual("b"), Individual("a")) in ontology.abox


def test_equivalent_classes_becomes_two_inclusions():
    ontology = parse_owl_functional(
        "Ontology(<http://x> EquivalentClasses(:A :B))"
    )
    axioms = set(ontology.tbox.axioms)
    A, B = AtomicConcept("A"), AtomicConcept("B")
    assert axioms == {ConceptInclusion(A, B), ConceptInclusion(B, A)}


def test_inverse_object_properties_axiom():
    ontology = parse_owl_functional(
        "Ontology(<http://x> InverseObjectProperties(:p :q))"
    )
    p, q = AtomicRole("p"), AtomicRole("q")
    assert RoleInclusion(p, InverseRole(q)) in ontology.tbox
    assert RoleInclusion(InverseRole(q), p) in ontology.tbox


def test_n_ary_disjointness_expands_pairwise():
    ontology = parse_owl_functional(
        "Ontology(<http://x> DisjointClasses(:A :B :C))"
    )
    assert len(ontology.tbox.negative_inclusions) == 3


def test_unsupported_axiom_rejected():
    with pytest.raises(LanguageViolation):
        parse_owl_functional(
            "Ontology(<http://x> TransitiveObjectProperty(:p))"
        )


def test_full_iris_use_fragment():
    ontology = parse_owl_functional(
        "Ontology(<http://x> SubClassOf(<http://ex.org/onto#Cat> "
        "<http://ex.org/onto#Animal>))"
    )
    assert ConceptInclusion(AtomicConcept("Cat"), AtomicConcept("Animal")) in ontology.tbox


def test_round_trip(university_tbox):
    text = serialize_owl_functional(university_tbox)
    reparsed = parse_owl_functional(text)
    assert set(reparsed.tbox.axioms) == set(university_tbox.axioms)
    assert reparsed.signature == university_tbox.signature


def test_round_trip_with_abox():
    original = parse_owl_functional(DOC)
    reparsed = parse_owl_functional(serialize_owl_functional(original))
    assert set(reparsed.tbox.axioms) == set(original.tbox.axioms)
    assert set(reparsed.abox) == set(original.abox)
