"""Unit tests for the deterministic ddmin shrinker of ``repro.testkit``."""

from __future__ import annotations

import random

import pytest

from repro.baselines import make_reasoner
from repro.dllite import (
    AtomicConcept,
    ConceptInclusion,
    NegatedConcept,
    TBox,
    parse_tbox,
)
from repro.errors import TimeoutExceeded
from repro.runtime.budget import Budget
from repro.testkit import shrink_axioms, write_reproducer
from repro.testkit.shrink import shrink_tbox


def _noise_axioms(count: int):
    return [
        ConceptInclusion(AtomicConcept(f"N{i}"), AtomicConcept(f"N{i + 1}"))
        for i in range(count)
    ]


def test_planted_bug_minimizes_to_its_core():
    """Acceptance criterion: a planted bug shrinks to ≤ 5 axioms.

    The "bug" is an unsatisfiability planted inside 40 axioms of taxonomy
    noise; its semantic core is the 2-axiom set {X ⊑ Y, Y ⊑ ¬X}.  The
    still-fails predicate re-runs the real graph classifier, so this is
    shrinking exactly the way the conformance runner does.
    """
    X, Y = AtomicConcept("X"), AtomicConcept("Y")
    core = [ConceptInclusion(X, Y), ConceptInclusion(Y, NegatedConcept(X))]
    noise = _noise_axioms(40)
    rng = random.Random("plant")
    axioms = noise[:]
    for axiom in core:
        axioms.insert(rng.randrange(len(axioms) + 1), axiom)
    engine = make_reasoner("quonto-graph")

    def still_unsat(candidate):
        result = engine.classify_named(TBox(candidate, name="cand"))
        return X in result.unsatisfiable

    minimal = shrink_axioms(axioms, still_unsat)
    assert len(minimal) <= 5
    assert set(minimal) == set(core)


def test_result_is_one_minimal():
    axioms = _noise_axioms(12)
    target = {axioms[2], axioms[7], axioms[9]}

    def still_fails(candidate):
        return target <= set(candidate)

    minimal = shrink_axioms(axioms, still_fails)
    assert set(minimal) == target
    for index in range(len(minimal)):
        assert not still_fails(minimal[:index] + minimal[index + 1 :])


def test_shrinking_is_deterministic():
    axioms = _noise_axioms(20)
    target = {axioms[3], axioms[11]}

    def still_fails(candidate):
        return target <= set(candidate)

    first = shrink_axioms(list(axioms), still_fails)
    second = shrink_axioms(list(axioms), still_fails)
    assert first == second


def test_non_reproducing_input_is_rejected():
    with pytest.raises(ValueError):
        shrink_axioms(_noise_axioms(4), lambda candidate: False)


def test_budget_bounds_the_search():
    axioms = _noise_axioms(30)
    exhausted = Budget(0.0, task="shrink")

    def still_fails(candidate):
        return axioms[0] in candidate

    with pytest.raises(TimeoutExceeded):
        shrink_axioms(axioms, still_fails, budget=exhausted)


def test_shrink_tbox_rebuilds_signature_from_survivors():
    tbox = parse_tbox(
        """
        concept A, B, Spare
        role unusedRole
        A isa B
        B isa not A
        """,
        name="sig",
    )
    engine = make_reasoner("quonto-graph")

    def still_fails(candidate):
        result = engine.classify_named(candidate)
        return AtomicConcept("A") in result.unsatisfiable

    minimal = shrink_tbox(tbox, still_fails)
    assert len(minimal) == 2
    assert AtomicConcept("Spare") not in minimal.signature


def test_write_reproducer_round_trips_and_deduplicates(tmp_path):
    tbox = parse_tbox("A isa B\nB isa not A", name="repro")
    first = write_reproducer(tmp_path, "seed7 round3: unsat", tbox, note="why\nhow")
    second = write_reproducer(tmp_path, "seed7 round3: unsat", tbox)
    assert first != second and first.exists() and second.exists()
    content = first.read_text()
    assert content.startswith("# minimized conformance reproducer")
    assert "# why" in content and "# how" in content
    replayed = parse_tbox(content, name="replayed")
    assert set(replayed) == set(tbox)
