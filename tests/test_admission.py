"""Tests for the admission controller in front of certain-answer queries."""

from __future__ import annotations

import threading
import time

import pytest

from repro.dllite.abox import ABox, ConceptAssertion, Individual
from repro.dllite.axioms import ConceptInclusion
from repro.dllite.syntax import AtomicConcept
from repro.dllite.tbox import TBox
from repro.errors import DegradedResult
from repro.obda.evaluation import ABoxExtents, ExtentProvider
from repro.obda.system import OBDASystem
from repro.runtime.concurrency import (
    AdmissionController,
    AdmissionOutcome,
    AtomicCounter,
)
from repro.runtime.faults import FaultInjector, FaultSpec, FaultyExtents

_STUDENT = AtomicConcept("Student")
_PERSON = AtomicConcept("Person")
_QUERY = "q(x) :- Person(x)"


def _system():
    tbox = TBox([ConceptInclusion(_STUDENT, _PERSON)], name="admission")
    abox = ABox(
        [ConceptAssertion(_STUDENT, Individual(f"s{index}")) for index in range(3)]
    )
    return OBDASystem(tbox, abox=abox)


class _SlowExtents(ExtentProvider):
    """Counts concurrent extent pulls and can block them on an event."""

    def __init__(self, inner, delay_s=0.0, hold=None):
        self.inner = inner
        self.delay_s = delay_s
        self.hold = hold
        self.concurrent = AtomicCounter()
        self.peak = AtomicCounter()

    def extent(self, predicate, arity):
        level = self.concurrent.increment()
        # racy max is fine: we only need peak >= true peak never to hold
        if level > self.peak.value:
            self.peak.increment(level - self.peak.value)
        try:
            if self.hold is not None:
                self.hold.wait(10.0)
            if self.delay_s:
                time.sleep(self.delay_s)
            return self.inner.extent(predicate, arity)
        finally:
            self.concurrent.increment(-1)

    def generation(self):
        return self.inner.generation()


def _run_threads(target, count):
    threads = [
        threading.Thread(target=target, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
        assert not thread.is_alive()


def test_ok_outcome_carries_answers_and_stamps():
    system = _system()
    controller = AdmissionController(max_concurrency=2)
    outcome = controller.certain_answers(system, _QUERY, check_consistency=False)
    assert isinstance(outcome, AdmissionOutcome)
    assert outcome.outcome == "ok" and not outcome.degraded
    assert len(outcome.answers) == 3
    assert outcome.stamp_before == outcome.stamp_after
    assert set(outcome.to_dict()) >= {"outcome", "stamp_before", "stamp_after"}


def test_gate_bounds_concurrent_evaluations():
    system = _system()
    slow = _SlowExtents(ABoxExtents(system.abox), delay_s=0.02)
    system._shared_extents = slow
    controller = AdmissionController(
        max_concurrency=2, max_queue=32, queue_timeout_s=10.0, dedup_in_flight=False
    )
    outcomes = []
    lock = threading.Lock()

    def work(index):
        # distinct query names so requests cannot share rewriting work
        outcome = controller.certain_answers(
            system, f"q{index}(x) :- Person(x)", check_consistency=False
        )
        with lock:
            outcomes.append(outcome)

    _run_threads(work, 8)
    assert all(outcome.outcome == "ok" for outcome in outcomes)
    assert controller.stats()["peak_active"] <= 2
    assert slow.peak.value <= 2


def test_overload_sheds_with_flag_and_warning():
    system = _system()
    hold = threading.Event()
    system._shared_extents = _SlowExtents(ABoxExtents(system.abox), hold=hold)
    controller = AdmissionController(
        max_concurrency=1,
        max_queue=0,
        queue_timeout_s=0.05,
        dedup_in_flight=False,
    )
    first_done = threading.Event()

    def occupant(_index):
        controller.certain_answers(system, _QUERY, check_consistency=False)
        first_done.set()

    blocker = threading.Thread(target=occupant, args=(0,))
    blocker.start()
    deadline = time.monotonic() + 5.0
    while controller.stats()["active"] == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    try:
        with pytest.warns(DegradedResult):
            shed = controller.certain_answers(
                system, "q2(x) :- Person(x)", check_consistency=False
            )
    finally:
        hold.set()
        blocker.join(10.0)
    assert shed.shed and shed.degraded and shed.outcome == "shed"
    assert shed.answers == frozenset()
    assert "queue full" in shed.reason
    assert first_done.wait(10.0)


def test_in_flight_identical_queries_are_deduped():
    system = _system()
    hold = threading.Event()
    slow = _SlowExtents(ABoxExtents(system.abox), hold=hold)
    system._shared_extents = slow
    controller = AdmissionController(max_concurrency=4, queue_timeout_s=10.0)
    outcomes = []
    lock = threading.Lock()

    def work(_index):
        outcome = controller.certain_answers(system, _QUERY, check_consistency=False)
        with lock:
            outcomes.append(outcome)

    threads = [threading.Thread(target=work, args=(index,)) for index in range(4)]
    for thread in threads:
        thread.start()
    # wait until the leader is inside the (blocked) evaluation, so the
    # other three requests must join its flight rather than race past it
    deadline = time.monotonic() + 5.0
    while slow.concurrent.value == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    time.sleep(0.05)
    hold.set()
    for thread in threads:
        thread.join(10.0)
        assert not thread.is_alive()

    assert len(outcomes) == 4
    assert all(outcome.answers == outcomes[0].answers for outcome in outcomes)
    deduped = [outcome for outcome in outcomes if outcome.deduped]
    assert deduped, "concurrent identical queries should share one flight"
    # the system evaluated once: only the leader pulled extents
    assert slow.peak.value == 1


def test_source_outage_degrades_instead_of_raising():
    system = _system()
    system._shared_extents = FaultyExtents(
        ABoxExtents(system.abox), FaultInjector(FaultSpec(permanent_after=0))
    )
    controller = AdmissionController(max_concurrency=2)
    with pytest.warns(DegradedResult):
        outcome = controller.certain_answers(system, _QUERY, check_consistency=False)
    assert outcome.outcome == "degraded" and outcome.degraded
    assert not outcome.shed
    assert "PermanentSourceError" in outcome.reason
    assert outcome.answers == frozenset()


def test_mutation_between_requests_separates_flights():
    system = _system()
    controller = AdmissionController(max_concurrency=2)
    before = controller.certain_answers(system, _QUERY, check_consistency=False)
    system.abox.add(ConceptAssertion(_STUDENT, Individual("late")))
    after = controller.certain_answers(system, _QUERY, check_consistency=False)
    assert len(after.answers) == len(before.answers) + 1
    assert after.stamp_before > before.stamp_before


def test_constructor_validates_limits():
    with pytest.raises(ValueError):
        AdmissionController(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=-1)
