"""Unit tests for the TBox container and Signature."""

import pytest

from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    FunctionalRole,
    NegatedConcept,
    QualifiedExistential,
    RoleInclusion,
    Signature,
    TBox,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
P = AtomicRole("P")


def test_add_tracks_signature_incrementally():
    tbox = TBox()
    tbox.add(ConceptInclusion(A, B))
    assert A in tbox.signature and B in tbox.signature
    assert len(tbox.signature.concepts) == 2
    tbox.add(RoleInclusion(P, AtomicRole("R")))
    assert len(tbox.signature.roles) == 2


def test_add_deduplicates_and_reports():
    tbox = TBox()
    assert tbox.add(ConceptInclusion(A, B)) is True
    assert tbox.add(ConceptInclusion(A, B)) is False
    assert len(tbox) == 1
    assert tbox.extend([ConceptInclusion(A, B), ConceptInclusion(B, C)]) == 1


def test_declare_without_axioms():
    tbox = TBox()
    tbox.declare(AtomicConcept("Lonely"))
    tbox.declare(AtomicAttribute("u"))
    assert AtomicConcept("Lonely") in tbox.signature
    assert len(tbox) == 0
    with pytest.raises(TypeError):
        tbox.declare("Lonely")


def test_positive_and_negative_partition():
    tbox = TBox(
        [
            ConceptInclusion(A, B),
            ConceptInclusion(A, NegatedConcept(C)),
            FunctionalRole(P),
        ]
    )
    assert len(tbox.positive_inclusions) == 1
    assert len(tbox.negative_inclusions) == 1
    assert len(tbox.functionality_assertions) == 1


def test_qualified_existentials_iterator():
    qualified = ConceptInclusion(A, QualifiedExistential(P, B))
    tbox = TBox([qualified, ConceptInclusion(A, B)])
    found = list(tbox.qualified_existentials())
    assert found == [(qualified, qualified.rhs)]


def test_discard_keeps_signature():
    axiom = ConceptInclusion(A, B)
    tbox = TBox([axiom])
    assert tbox.discard(axiom) is True
    assert tbox.discard(axiom) is False
    assert len(tbox) == 0
    assert A in tbox.signature  # signature deliberately untouched


def test_copy_is_independent():
    tbox = TBox([ConceptInclusion(A, B)], name="orig")
    clone = tbox.copy(name="clone")
    clone.add(ConceptInclusion(B, C))
    assert len(tbox) == 1 and len(clone) == 2
    assert clone.name == "clone"


def test_stats_shape(university_tbox):
    stats = university_tbox.stats()
    assert stats["axioms"] == len(university_tbox)
    assert stats["roles"] == 2
    assert stats["attributes"] == 1
    assert stats["functionality"] == 1
    assert stats["negative_inclusions"] == 1
    assert (
        stats["concept_inclusions"]
        + stats["role_inclusions"]
        + stats["attribute_inclusions"]
        + stats["functionality"]
        == stats["axioms"]
    )


def test_signature_iteration_is_deterministic():
    signature = Signature(
        concepts=[B, A, C], roles=[AtomicRole("Z"), P], attributes=[]
    )
    names = [item.name for item in signature]
    assert names == ["A", "B", "C", "P", "Z"]


def test_add_rejects_non_axiom():
    with pytest.raises(TypeError):
        TBox().add("A isa B")


def test_annotations_attach_and_copy():
    axiom = ConceptInclusion(A, B)
    tbox = TBox([axiom])
    tbox.annotate(axiom, "told by the domain expert")
    assert tbox.annotation(axiom) == "told by the domain expert"
    assert tbox.annotation(ConceptInclusion(B, C)) is None
    clone = tbox.copy()
    assert clone.annotation(axiom) == "told by the domain expert"
    with pytest.raises(KeyError):
        tbox.annotate(ConceptInclusion(B, C), "not an axiom of this TBox")
