"""Unit tests for the automated documentation generator (§8)."""

from repro.core import classify
from repro.dllite import parse_tbox
from repro.docs import DocumentationOptions, generate_documentation


def test_documentation_covers_all_predicates(university_tbox):
    text = generate_documentation(university_tbox)
    for concept in university_tbox.signature.concepts:
        assert f"### {concept.name}" in text
    for role in university_tbox.signature.roles:
        assert f"### {role.name}" in text
    for attribute in university_tbox.signature.attributes:
        assert f"### {attribute.name}" in text


def test_documentation_reports_inferred_subsumers(university_tbox):
    text = generate_documentation(university_tbox)
    # Professor ⊑ Person is inferred (via Teacher), not asserted
    professor_section = text.split("### Professor")[1].split("###")[0]
    assert "inferred subsumers" in professor_section
    assert "Person" in professor_section
    assert "asserted subsumers" in professor_section


def test_documentation_reports_disjointness_and_participation(university_tbox):
    text = generate_documentation(university_tbox)
    student_section = text.split("### Student")[1].split("###")[0]
    assert "disjoint with" in student_section and "Teacher" in student_section
    teacher_section = text.split("### Teacher")[1].split("###")[0]
    assert "participation" in teacher_section


def test_documentation_reports_role_typing(university_tbox):
    text = generate_documentation(university_tbox)
    teaches_section = text.split("### teaches")[1].split("###")[0]
    assert "domain" in teaches_section and "Teacher" in teaches_section
    assert "range" in teaches_section and "Course" in teaches_section


def test_documentation_reports_functional_attribute(university_tbox):
    text = generate_documentation(university_tbox)
    salary_section = text.split("### salary")[1]
    assert "functional" in salary_section
    assert "Employee" in salary_section  # attribute domain


def test_design_warning_for_unsatisfiable_predicates():
    tbox = parse_tbox("Dead isa A\nDead isa B\nA isa not B")
    text = generate_documentation(tbox)
    assert "Design warning" in text
    assert "Dead" in text
    dead_section = text.split("### Dead")[1].split("###")[0]
    assert "unsatisfiable" in dead_section


def test_documentation_is_deterministic(university_tbox):
    assert generate_documentation(university_tbox) == generate_documentation(
        university_tbox
    )


def test_options_disable_inference_and_stats(university_tbox):
    options = DocumentationOptions(include_inferred=False, include_statistics=False)
    text = generate_documentation(university_tbox, options=options)
    assert "inferred subsumers" not in text
    assert "At a glance" not in text


def test_reuses_supplied_classification(university_tbox):
    classification = classify(university_tbox)
    text = generate_documentation(university_tbox, classification=classification)
    assert "inferred subsumers" in text


def test_title_override(university_tbox):
    options = DocumentationOptions(title="My Ontology")
    text = generate_documentation(university_tbox, options=options)
    assert text.startswith("# My Ontology")


def test_design_notes_surface_in_documentation():
    from repro.dllite import parse_tbox

    tbox = parse_tbox(
        "note: decided with the registrar's office\nStudent isa Person"
    )
    text = generate_documentation(tbox)
    assert "design note" in text
    assert "registrar" in text
