"""Unit tests for the PerfectRef rewriter."""

import pytest

from repro.dllite import parse_tbox
from repro.obda import parse_cq, parse_query, perfect_ref
from repro.obda.rewriting.perfectref import RewritingTooLarge


def rewrite(tbox_text, query_text, **kwargs):
    return perfect_ref(parse_query(query_text), parse_tbox(tbox_text), **kwargs)


def bodies(ucq):
    return {tuple(sorted(str(a) for a in cq.atoms)) for cq in ucq}


def test_concept_hierarchy_expansion():
    result = rewrite("Professor isa Teacher", "q(x) :- Teacher(x)")
    assert bodies(result) == {("Teacher(x)",), ("Professor(x)",)}


def test_domain_axiom_rewrites_concept_to_role_atom():
    result = rewrite("role teaches\nexists teaches isa Teacher", "q(x) :- Teacher(x)")
    assert len(result) == 2
    assert any(
        atom.predicate == "teaches" for cq in result for atom in cq.atoms
    )


def test_range_axiom_orientation():
    result = rewrite(
        "role teaches\nexists teaches^- isa Course", "q(y) :- Course(y)"
    )
    found = [a for cq in result for a in cq.atoms if a.predicate == "teaches"]
    assert found and all(str(atom.args[1]) == "y" for atom in found)


def test_unbound_existential_eliminated_by_witness():
    # Teacher ⊑ ∃teaches: the atom teaches(x, y) with unbound y collapses
    result = rewrite(
        "role teaches\nTeacher isa exists teaches", "q(x) :- teaches(x, y)"
    )
    assert ("Teacher(x)",) in bodies(result)


def test_bound_variable_blocks_witness_elimination():
    result = rewrite(
        "role teaches\nTeacher isa exists teaches",
        "q(x, y) :- teaches(x, y)",
    )
    assert bodies(result) == {("teaches(x, y)",)}


def test_qualified_two_atom_rule():
    result = rewrite(
        "role isPartOf\nCounty isa exists isPartOf . State",
        "q(x) :- isPartOf(x, y), State(y)",
    )
    assert ("County(x)",) in bodies(result)


def test_qualified_single_atom_rule():
    result = rewrite(
        "role isPartOf\nCounty isa exists isPartOf . State",
        "q(x) :- isPartOf(x, y)",
    )
    assert ("County(x)",) in bodies(result)


def test_role_hierarchy_rewrites_role_atoms():
    result = rewrite("role P, R\nP isa R", "q(x, y) :- R(x, y)")
    assert ("P(x, y)",) in bodies(result)


def test_inverse_role_inclusion_flips_arguments():
    result = rewrite("role P, R\nP isa R^-", "q(x, y) :- R(x, y)")
    assert ("P(y, x)",) in bodies(result)


def test_reduce_enables_further_rewriting():
    # Classic PerfectRef example: unifying the two role atoms frees y,
    # allowing the witness axiom to fire.
    result = rewrite(
        "role P\nA isa exists P",
        "q(x) :- P(x, y), P(x, z)",
    )
    assert ("A(x)",) in bodies(result)


def test_attribute_rewriting():
    result = rewrite(
        "attribute u\nEmployee isa domain(u)",
        "q(x) :- u(x, v)",
    )
    assert ("Employee(x)",) in bodies(result)


def test_attribute_hierarchy():
    result = rewrite("attribute u, v\nu isa v", "q(x, w) :- v(x, w)")
    assert ("u(x, w)",) in bodies(result)


def test_negative_inclusions_do_not_rewrite():
    result = rewrite("A isa not B", "q(x) :- B(x)")
    assert bodies(result) == {("B(x)",)}


def test_constants_preserved():
    result = rewrite("Professor isa Teacher", "q() :- Teacher('ada')")
    assert ("Professor('ada')",) in bodies(result)


def test_minimization_removes_subsumed():
    result = rewrite(
        "Professor isa Teacher",
        "q(x) :- Teacher(x), Person(x) ; Teacher(x)",
    )
    # the two-atom disjunct is subsumed by the one-atom one
    assert all(len(cq.atoms) <= 2 for cq in result)
    assert ("Teacher(x)",) in bodies(result)


def test_max_disjuncts_guard():
    tbox_lines = ["role P"] + [f"A{i} isa exists P" for i in range(12)]
    with pytest.raises(RewritingTooLarge):
        rewrite(
            "\n".join(tbox_lines),
            "q(x) :- P(x, a), P(x, b), P(x, c), P(x, d)",
            max_disjuncts=5,
        )
