"""Unit tests for TBox axioms (repro.dllite.axioms)."""

import pytest

from repro.dllite.axioms import (
    AttributeInclusion,
    ConceptInclusion,
    FunctionalAttribute,
    FunctionalRole,
    RoleInclusion,
    axiom_signature,
    expression_signature,
)
from repro.dllite.syntax import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeDomain,
    ExistentialRole,
    InverseRole,
    NegatedAttribute,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
)
from repro.errors import LanguageViolation

A, B = AtomicConcept("A"), AtomicConcept("B")
P, R = AtomicRole("P"), AtomicRole("R")
U, V = AtomicAttribute("u"), AtomicAttribute("v")


def test_concept_inclusion_polarity():
    assert ConceptInclusion(A, B).is_positive
    assert not ConceptInclusion(A, B).is_negative
    negative = ConceptInclusion(A, NegatedConcept(B))
    assert negative.is_negative and not negative.is_positive
    qualified = ConceptInclusion(A, QualifiedExistential(P, B))
    assert qualified.is_positive


def test_concept_inclusion_rejects_non_basic_lhs():
    with pytest.raises(LanguageViolation):
        ConceptInclusion(NegatedConcept(A), B)
    with pytest.raises(LanguageViolation):
        ConceptInclusion(QualifiedExistential(P, A), B)


def test_role_inclusion_polarity_and_validation():
    assert RoleInclusion(P, R).is_positive
    assert RoleInclusion(InverseRole(P), R).is_positive
    assert RoleInclusion(P, NegatedRole(R)).is_negative
    with pytest.raises(LanguageViolation):
        RoleInclusion(NegatedRole(P), R)


def test_attribute_inclusion_polarity_and_validation():
    assert AttributeInclusion(U, V).is_positive
    assert AttributeInclusion(U, NegatedAttribute(V)).is_negative
    with pytest.raises(LanguageViolation):
        AttributeInclusion(NegatedAttribute(U), V)


def test_functionality_assertions():
    assert str(FunctionalRole(P)) == "(funct P)"
    assert str(FunctionalRole(InverseRole(P))) == "(funct P⁻)"
    assert str(FunctionalAttribute(U)) == "(funct u)"
    assert not FunctionalRole(P).is_positive
    assert not FunctionalRole(P).is_negative


def test_axioms_are_hashable_and_deduplicate():
    axioms = {ConceptInclusion(A, B), ConceptInclusion(A, B), RoleInclusion(P, R)}
    assert len(axioms) == 2


def test_axiom_signature_collects_atomic_predicates():
    axiom = ConceptInclusion(
        ExistentialRole(InverseRole(P)), QualifiedExistential(R, B)
    )
    assert set(axiom_signature(axiom)) == {P, R, B}
    attribute_axiom = ConceptInclusion(AttributeDomain(U), NegatedConcept(A))
    assert set(axiom_signature(attribute_axiom)) == {U, A}
    assert set(axiom_signature(FunctionalAttribute(U))) == {U}


def test_expression_signature_errors_on_garbage():
    with pytest.raises(TypeError):
        list(expression_signature("not an expression"))


def test_ascii_rendering_parses_back():
    from repro.dllite.parser import parse_axiom

    axioms = [
        ConceptInclusion(A, QualifiedExistential(InverseRole(P), B)),
        RoleInclusion(InverseRole(P), NegatedRole(R)),
        AttributeInclusion(U, NegatedAttribute(V)),
        FunctionalRole(InverseRole(P)),
        FunctionalAttribute(U),
    ]
    for axiom in axioms:
        # Attribute names are ambiguous without declarations, so compare
        # against a parse seeded by the rendering itself where possible.
        text = axiom.to_ascii()
        assert isinstance(text, str) and text
