"""Property-based tests for the cost-based SQL planner.

Three invariants, each over randomized inputs:

* **plan equivalence** — selection pushdown, join reordering, factor
  pruning and semi-joins must preserve ResultSet semantics: a planned
  execution of a random algebra tree equals the naive evaluator's, up
  to row order (and exactly, including column order, in exact mode);
* **statistics invariance** — table statistics are a function of the
  row *set*, so any permutation of the rows yields identical
  statistics;
* **pruning soundness** — every disjunct dropped by constraint pruning
  is witnessed by a kept disjunct that weakening-maps into it, and the
  pruned union has exactly the original's certain answers over the raw
  extents.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.obda.constraints import (
    ExtensionalConstraints,
    prune_ucq_with_constraints,
    weakening_homomorphism_exists,
)
from repro.obda.evaluation import MappingExtents, evaluate_ucq
from repro.obda.queries import UnionQuery
from repro.obda.sql.algebra import (
    Condition,
    Const,
    Join,
    Projection,
    Rename,
    Scan,
    Selection,
    evaluate,
)
from repro.obda.sql.database import Database
from repro.obda.sql.planner import Planner
from repro.obda.sql.stats import StatisticsCatalog
from repro.testkit.generators import (
    FuzzProfile,
    direct_mapping_system,
    random_abox,
    random_queries,
    random_tiny_tbox,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_database(rng: random.Random) -> Database:
    database = Database("prop")
    for index in range(rng.randint(2, 4)):
        width = rng.randint(1, 3)
        columns = [f"c{j}" for j in range(width)]
        rows = [
            tuple(rng.randint(0, 5) for _ in range(width))
            for _ in range(rng.randint(0, 12))
        ]
        database.create_table(f"t{index}", columns, rows)
    return database


def random_tree(rng: random.Random, database: Database):
    """A random unfolder-shaped tree: Selection over a Join of Renames."""
    names = sorted(table.name for table in database.tables())
    count = rng.randint(1, min(3, len(names)))
    picked = [rng.choice(names) for _ in range(count)]
    sources = [Rename(Scan(name), f"q{i}") for i, name in enumerate(picked)]
    tree = sources[0]
    for source in sources[1:]:
        tree = Join(tree, source, on=())
    columns = [
        f"q{i}.{column}"
        for i, name in enumerate(picked)
        for column in database.table(name).columns
    ]
    conditions = []
    for _ in range(rng.randint(0, 3)):
        kind = rng.random()
        left = rng.choice(columns)
        if kind < 0.6:
            conditions.append(Condition(left, rng.choice(columns), "="))
        elif kind < 0.8:
            conditions.append(Condition(left, Const(rng.randint(0, 5)), "="))
        else:
            conditions.append(Condition(left, rng.choice(columns), "!="))
    if conditions:
        tree = Selection(tree, tuple(conditions))
    if rng.random() < 0.7:
        width = rng.randint(1, min(3, len(columns)))
        chosen = rng.sample(columns, width)
        tree = Projection(
            tree,
            tuple(chosen),
            names=tuple(f"o{i}" for i in range(width)),
            distinct=rng.random() < 0.5,
        )
    return tree


@SETTINGS
@given(st.integers(0, 10_000))
def test_planned_execution_equals_naive(seed):
    rng = random.Random(f"planner-prop:{seed}")
    database = random_database(rng)
    tree = random_tree(rng, database)
    naive = evaluate(tree, database)
    planner = Planner(StatisticsCatalog(database))
    exact = planner.plan(tree).execute(database, planner.catalog)
    assert exact.columns == naive.columns
    assert sorted(map(str, exact.rows)) == sorted(map(str, naive.rows))


@SETTINGS
@given(st.integers(0, 10_000))
def test_planned_set_semantics_equals_naive_sets(seed):
    rng = random.Random(f"planner-prop-set:{seed}")
    database = random_database(rng)
    tree = random_tree(rng, database)
    naive = evaluate(tree, database)
    planner = Planner(StatisticsCatalog(database))
    planned = planner.plan(tree, set_semantics=True).execute(
        database, planner.catalog
    )
    # under set semantics only the row set is promised — and only when the
    # planner actually engaged it (root DISTINCT); otherwise bag equality
    assert set(planned.rows) == set(naive.rows)
    if not (isinstance(tree, Projection) and tree.distinct):
        assert sorted(map(str, planned.rows)) == sorted(map(str, naive.rows))


@SETTINGS
@given(st.integers(0, 10_000))
def test_statistics_invariant_under_row_permutation(seed):
    rng = random.Random(f"stats-prop:{seed}")
    width = rng.randint(1, 3)
    rows = [
        tuple(rng.randint(0, 4) for _ in range(width))
        for _ in range(rng.randint(0, 20))
    ]
    columns = [f"c{j}" for j in range(width)]
    original = Database("orig")
    original.create_table("t", columns, rows)
    shuffled_rows = list(rows)
    rng.shuffle(shuffled_rows)
    shuffled = Database("shuf")
    shuffled.create_table("t", columns, shuffled_rows)
    a = StatisticsCatalog(original).statistics("t")
    b = StatisticsCatalog(shuffled).statistics("t")
    assert a.as_dict() == b.as_dict()


@SETTINGS
@given(st.integers(0, 10_000))
def test_pruned_disjuncts_are_always_subsumed(seed):
    rng = random.Random(f"prune-prop:{seed}")
    profile = FuzzProfile()
    tbox = random_tiny_tbox(rng, profile)
    abox = random_abox(rng, tbox, profile)
    queries = random_queries(rng, tbox, profile)
    if not queries:
        return
    # merge the generated single-disjunct queries into one UCQ so the
    # pruner has real work (all share answer variable x / arity 1)
    disjuncts = [d for q in queries for d in q.disjuncts]
    ucq = UnionQuery(disjuncts, name="merged")
    system = direct_mapping_system(tbox, abox)
    extents = MappingExtents(system.mappings, system.database)
    constraints = ExtensionalConstraints(extents)
    inclusions = constraints.relevant_inclusions(ucq)
    pruned = prune_ucq_with_constraints(ucq, inclusions)
    assert pruned.after <= pruned.before
    assert pruned.ucq.disjuncts, "pruning must never empty the union"
    kept = set(pruned.ucq.disjuncts)
    for disjunct in set(ucq.disjuncts) - kept:
        assert any(
            weakening_homomorphism_exists(keeper, disjunct, inclusions)
            for keeper in kept
        ), f"dropped disjunct {disjunct} has no witness"
    assert evaluate_ucq(pruned.ucq, extents) == evaluate_ucq(ucq, extents)
