"""Tests for the seeded chaos-soak drill and its CLI front-end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.runtime.soak import SoakConfig, run_soak

_QUICK = SoakConfig(seed=0, threads=4, ops_per_thread=12, join_timeout_s=60.0)


@pytest.fixture(scope="module")
def quick_report():
    return run_soak(_QUICK)


def test_soak_invariants_hold(quick_report):
    invariants = quick_report["invariants"]
    assert invariants["lost_updates"] == []
    assert invariants["stale_answers"] == []
    assert invariants["deadlocks"] == []
    assert invariants["unflagged_degradation"] == []
    assert invariants["errors"] == []
    assert invariants["ok"] is True


def test_soak_report_is_machine_readable(quick_report):
    # every field JSON-serializable, with the documented schema
    serialized = json.loads(json.dumps(quick_report, default=str))
    assert set(serialized) >= {
        "config",
        "totals",
        "admission",
        "faults",
        "invariants",
        "metrics",
        "duration_s",
    }
    totals = serialized["totals"]
    assert totals["operations"] == _QUICK.threads * _QUICK.ops_per_thread
    assert totals["queries"] + sum(totals["mutations"].values()) == totals[
        "operations"
    ]
    outcomes = totals["outcomes"]
    assert outcomes["ok"] + outcomes["degraded"] + outcomes["shed"] == totals[
        "queries"
    ]
    assert serialized["config"]["seed"] == 0


def test_soak_exercises_faults_and_mutations(quick_report):
    assert quick_report["faults"]["transients_injected"] > 0
    assert quick_report["totals"]["mutations"]["asserts"] > 0
    assert quick_report["totals"]["mutations"]["axioms"] > 0
    assert quick_report["metrics"].get("runtime.admission.requests", 0) > 0


def test_soak_workload_is_seed_deterministic():
    first = run_soak(_QUICK)
    second = run_soak(_QUICK)
    # thread interleaving varies, but each thread's op stream is seeded:
    # the workload composition must replay exactly
    assert first["totals"]["queries"] == second["totals"]["queries"]
    assert first["totals"]["mutations"] == second["totals"]["mutations"]


def test_soak_sheds_under_pressure_without_violations():
    report = run_soak(
        SoakConfig(
            seed=3,
            threads=6,
            ops_per_thread=10,
            max_concurrency=1,
            max_queue=1,
            queue_timeout_s=0.001,
            join_timeout_s=60.0,
        )
    )
    assert report["invariants"]["ok"] is True
    assert report["totals"]["outcomes"]["shed"] > 0


def test_soak_without_faults_runs_clean():
    report = run_soak(
        SoakConfig(
            seed=1,
            threads=3,
            ops_per_thread=8,
            transient_rate=0.0,
            slow_rate=0.0,
            join_timeout_s=60.0,
        )
    )
    assert report["invariants"]["ok"] is True
    assert report["faults"]["calls"] == 0


def test_cli_soak_smoke(tmp_path, capsys):
    out = tmp_path / "soak.json"
    code = main(
        [
            "soak",
            "--seed",
            "0",
            "--threads",
            "4",
            "--ops",
            "10",
            "--json",
            str(out),
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "lost updates: ok" in captured
    assert "stale answers: ok" in captured
    assert "deadlocks: ok" in captured
    report = json.loads(out.read_text())
    assert report["invariants"]["ok"] is True
