"""Unit tests for computeUnsat (Ω_T)."""

from repro.core import GraphClassifier, classify
from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeDomain,
    ExistentialRole,
    InverseRole,
    parse_tbox,
)

A = AtomicConcept("A")
P = AtomicRole("P")


def unsat_names(text):
    classification = classify(parse_tbox(text))
    return {str(node) for node in classification.unsatisfiable()}


def test_no_negative_inclusions_no_unsat(county_tbox):
    classification = classify(parse_tbox("A isa B\nB isa C"))
    assert classification.unsatisfiable() == set()


def test_predecessor_intersection_seed():
    # the paper's rule: S below both sides of a NI is unsatisfiable
    assert unsat_names("Dead isa A\nDead isa B\nA isa not B") == {"Dead"}


def test_self_disjointness_kills_concept_and_subsumees():
    assert unsat_names("A isa not A\nB isa A") == {"A", "B"}


def test_role_companions_die_together():
    names = unsat_names("exists P isa A\nexists P isa B\nA isa not B")
    # ∃P unsatisfiable forces P, P⁻ and ∃P⁻ unsatisfiable too
    assert names == {"∃P", "P", "P⁻", "∃P⁻"}


def test_role_disjointness_seeds_role_unsat():
    names = unsat_names("role P, R\nP isa R\nP isa not R")
    assert {"P", "P⁻", "∃P", "∃P⁻"} <= names
    assert "R" not in names


def test_unsat_propagates_to_predecessors():
    names = unsat_names(
        "Bottomish isa A\nBottomish isa B\nA isa not B\nLower isa Bottomish"
    )
    assert {"Bottomish", "Lower"} <= names


def test_qualified_filler_unsat_kills_lhs():
    # B ⊑ ∃P.Dead with Dead unsatisfiable makes B unsatisfiable —
    # the case computeUnsat's fixpoint exists for.
    names = unsat_names(
        """
        Dead isa X
        Dead isa Y
        X isa not Y
        B isa exists P . Dead
        """
    )
    assert "Dead" in names
    assert "B" in names


def test_qualified_cascade_two_levels():
    names = unsat_names(
        """
        Dead isa X
        Dead isa Y
        X isa not Y
        Mid isa exists P . Dead
        Top isa exists R . Mid
        """
    )
    assert {"Dead", "Mid", "Top"} <= names


def test_unsat_role_kills_existential_sources():
    names = unsat_names(
        """
        P isa not P
        B isa exists P
        """
    )
    assert {"P", "B"} <= names


def test_attribute_domain_unsat_kills_attribute():
    names = unsat_names(
        """
        attribute u
        domain(u) isa A
        domain(u) isa B
        A isa not B
        """
    )
    assert {"u", "δ(u)"} <= names


def test_attribute_disjointness():
    names = unsat_names("attribute u, v\nu isa v\nu isa not v")
    assert "u" in names and "δ(u)" in names
    assert "v" not in names


def test_satisfiable_siblings_untouched():
    names = unsat_names("A isa not B\nSubA isa A\nSubB isa B")
    assert names == set()


def test_phi_only_mode_skips_unsat():
    classifier = GraphClassifier(include_unsat=False)
    classification = classifier.classify(parse_tbox("A isa not A"))
    assert classification.unsatisfiable() == set()
