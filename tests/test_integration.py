"""Cross-module integration tests: the full paper workflow end-to-end.

The paper's methodology (§3) runs: graphical design → translation to
axioms → intensional reasoning (classification) → OBDA services (query
rewriting and answering over mapped sources).  These tests drive that
entire pipeline and cross-validate independent implementations against
each other on randomized inputs.
"""

import random

import pytest

from repro.approximation import (
    OwlOntology,
    semantic_approximation,
)
from repro.approximation.owl import And, OwlClass, Some
from repro.baselines import make_reasoner
from repro.core import GraphClassifier, classify
from repro.corpus import load_profile
from repro.dllite import (
    ABox,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    RoleAssertion,
    parse_owl_functional,
    parse_tbox,
    serialize_owl_functional,
    serialize_tbox,
)
from repro.graphical import (
    Diagram,
    diagram_to_tbox,
    render_svg,
    tbox_to_diagram,
)
from repro.obda import (
    ABoxExtents,
    DatalogExtents,
    Database,
    MappingAssertion,
    MappingCollection,
    OBDASystem,
    TargetAtom,
    evaluate_ucq,
    parse_query,
    perfect_ref,
    presto_rewrite,
    unfold,
)
from repro.obda.mapping import IriTemplate
from tests.conftest import make_random_tbox


def test_paper_workflow_design_to_query_answers():
    """Steps (i)-(iv) of §3, then query answering, in one pipeline."""
    # (i) design via the graphical language
    diagram = Diagram("geo")
    diagram.concept("County")
    diagram.concept("State")
    diagram.concept("Municipality")
    diagram.role("isPartOf")
    domain = diagram.domain_square("isPartOf", filler="State")
    diagram.include("County", domain.id)
    diagram.include("Municipality", "County")
    diagram.include("County", "State", negated=True)

    # (ii) automated translation into axioms
    tbox = diagram_to_tbox(diagram)
    assert len(tbox) == 3

    # (iv) intensional reasoning for design quality control
    classification = classify(tbox)
    assert classification.unsatisfiable() == set()
    assert classification.subsumes(
        AtomicConcept("County"), AtomicConcept("Municipality")
    )

    # OBDA services over mapped data
    db = Database("geo")
    db.create_table("areas", ["id", "kind"], [(1, "county"), (2, "municipality")])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM areas WHERE kind = 'county'",
                [TargetAtom(AtomicConcept("County"), (IriTemplate("area/{id}"),))],
            ),
            MappingAssertion(
                "SELECT id FROM areas WHERE kind = 'municipality'",
                [TargetAtom(AtomicConcept("Municipality"), (IriTemplate("area/{id}"),))],
            ),
        ]
    )
    system = OBDASystem(tbox, mappings=mappings, database=db)
    assert system.is_consistent()
    answers = system.certain_answers("q(x) :- County(x)")
    assert {str(a[0]) for a in answers} == {"area/1", "area/2"}

    # and the diagram still renders
    assert "<svg" in render_svg(diagram)


@pytest.mark.parametrize("seed", range(10))
def test_rewriting_methods_agree_on_random_instances(seed):
    """PerfectRef and Presto compute identical certain answers over a
    random TBox and random ABox (the E3 correctness backbone)."""
    rng = random.Random(seed)
    tbox = make_random_tbox(
        rng, n_concepts=3, n_roles=2, n_axioms=6, negative_fraction=0.0
    )
    abox = ABox()
    individuals = [Individual(f"i{k}") for k in range(4)]
    for _ in range(6):
        if rng.random() < 0.5:
            abox.add(
                ConceptAssertion(
                    AtomicConcept(f"C{rng.randrange(3)}"), rng.choice(individuals)
                )
            )
        else:
            abox.add(
                RoleAssertion(
                    AtomicRole(f"P{rng.randrange(2)}"),
                    rng.choice(individuals),
                    rng.choice(individuals),
                )
            )
    queries = [
        "q(x) :- C0(x)",
        "q(x) :- P0(x, y)",
        "q(x, y) :- P1(x, y)",
        "q(x) :- C1(x), P0(x, y)",
        "q(x) :- P0(x, y), C2(y)",
    ]
    extents = ABoxExtents(abox)
    for query_text in queries:
        query = parse_query(query_text)
        via_pr = evaluate_ucq(perfect_ref(query, tbox), extents)
        datalog = presto_rewrite(query, tbox)
        via_presto = evaluate_ucq(datalog.ucq, DatalogExtents(datalog, extents))
        assert via_pr == via_presto, (query_text, seed)


def test_owl_pipeline_approximate_then_classify_then_serialize():
    """§7 flow: expressive ontology → DL-Lite → classification → OWL file."""
    ontology = OwlOntology(name="expressive")
    ontology.subclass(OwlClass("Professor"), And(OwlClass("Teacher"), Some("teaches", OwlClass("Course"))))
    ontology.range("teaches", OwlClass("Course"))
    ontology.disjoint(OwlClass("Student"), OwlClass("Teacher"))
    tbox = semantic_approximation(ontology)
    classification = classify(tbox)
    assert classification.subsumes(
        AtomicConcept("Teacher"), AtomicConcept("Professor")
    )
    text = serialize_owl_functional(tbox)
    reparsed = parse_owl_functional(text)
    again = classify(reparsed.tbox)
    assert set(again.subsumptions(named_only=True)) == set(
        classification.subsumptions(named_only=True)
    )


def test_corpus_profile_through_all_reasoners_small_scale():
    """A scaled-down Figure 1 row classified identically by every complete
    engine (the benchmark's correctness premise)."""
    tbox = load_profile("Transportation", scale=0.15)
    results = {
        engine: make_reasoner(engine).classify_named(tbox)
        for engine in ("quonto-graph", "tableau-memoized", "tableau-dense")
    }
    reference = results["quonto-graph"]
    for engine, result in results.items():
        assert result.agrees_with(reference), engine


def test_textual_and_graphical_and_owlfs_round_trips_compose(county_tbox):
    """text → TBox → diagram → TBox → OWL/FS → TBox is the identity."""
    diagram = tbox_to_diagram(county_tbox)
    back = diagram_to_tbox(diagram)
    owl_text = serialize_owl_functional(back)
    final = parse_owl_functional(owl_text).tbox
    assert set(final.axioms) == set(county_tbox.axioms)
    text = serialize_tbox(final)
    assert set(parse_tbox(text).axioms) == set(county_tbox.axioms)


def test_sql_unfolding_equals_virtual_extents_on_random_data():
    """The unfolded SQL pipeline and the extent pipeline agree."""
    rng = random.Random(3)
    db = Database()
    rows = [(k, rng.randrange(3)) for k in range(12)]
    db.create_table("links", ["src", "dst"], rows)
    db.create_table("things", ["id"], [(k,) for k in range(12)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT src, dst FROM links",
                [
                    TargetAtom(
                        AtomicRole("P"),
                        (IriTemplate("n/{src}"), IriTemplate("n/{dst}")),
                    )
                ],
            ),
            MappingAssertion(
                "SELECT id FROM things",
                [TargetAtom(AtomicConcept("Thing"), (IriTemplate("n/{id}"),))],
            ),
        ]
    )
    tbox = parse_tbox("role P\nexists P isa Source\nexists P^- isa Target")
    system = OBDASystem(tbox, mappings=mappings, database=db)
    for query_text in (
        "q(x) :- Source(x)",
        "q(y) :- Target(y)",
        "q(x, y) :- P(x, y), Thing(x)",
    ):
        via_extents = system.certain_answers(query_text, method="perfectref")
        via_sql = system.certain_answers(query_text, method="perfectref-sql")
        assert via_extents == via_sql, query_text
