"""Unit tests for the SPARQL front-end (UCQ fragment)."""

import pytest

from repro.errors import SyntaxError_
from repro.obda import parse_cq
from repro.obda.sparql import parse_sparql


def canonical(ucq):
    return {cq.canonical() for cq in ucq}


def test_basic_graph_pattern():
    ucq = parse_sparql("SELECT ?x WHERE { ?x a :Teacher . ?x :teaches ?y }")
    assert canonical(ucq) == canonical(
        __import__("repro.obda", fromlist=["parse_query"]).parse_query(
            "q(x) :- Teacher(x), teaches(x, y)"
        )
    )


def test_rdf_type_forms_equivalent():
    via_a = parse_sparql("SELECT ?x WHERE { ?x a :C }")
    via_prefixed = parse_sparql("SELECT ?x WHERE { ?x rdf:type :C }")
    via_iri = parse_sparql(
        "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> :C }"
    )
    assert canonical(via_a) == canonical(via_prefixed) == canonical(via_iri)


def test_union_of_groups():
    ucq = parse_sparql(
        "SELECT ?x WHERE { { ?x a :County } UNION { ?x a :Municipality } }"
    )
    assert len(ucq) == 2


def test_semicolon_and_comma_shorthand():
    ucq = parse_sparql("SELECT ?x WHERE { ?x :knows ?y , ?z ; a :Person }")
    cq = ucq.disjuncts[0]
    predicates = sorted(a.predicate for a in cq.atoms)
    assert predicates == ["Person", "knows", "knows"]


def test_select_star_collects_variables():
    ucq = parse_sparql("SELECT * WHERE { ?b :p ?a }")
    assert [v.name for v in ucq.disjuncts[0].answer_vars] == ["a", "b"]


def test_literals_and_numbers():
    ucq = parse_sparql('SELECT ?x WHERE { ?x :name "Ada" . ?x :age 36 }')
    constants = {
        term.value
        for atom in ucq.disjuncts[0].atoms
        for term in atom.args
        if not hasattr(term, "name")
    }
    assert constants == {"Ada", 36}


def test_prefix_declarations_tolerated():
    ucq = parse_sparql(
        """
        PREFIX : <http://uni.example.org/onto#>
        PREFIX uni: <http://uni.example.org/onto#>
        SELECT ?x WHERE { ?x uni:attends :logic }
        """
    )
    atom = ucq.disjuncts[0].atoms[0]
    assert atom.predicate == "attends"
    assert str(atom.args[1]) == "'logic'"


def test_full_iri_predicates_use_local_name():
    ucq = parse_sparql(
        "SELECT ?x WHERE { ?x <http://uni.example.org/onto#teaches> ?y }"
    )
    assert ucq.disjuncts[0].atoms[0].predicate == "teaches"


def test_unsupported_constructs_rejected():
    with pytest.raises(SyntaxError_):
        parse_sparql("SELECT ?x WHERE { ?x a :C . FILTER(?x > 3) }")
    with pytest.raises(SyntaxError_):
        parse_sparql("SELECT ?x WHERE { ?x a :C . OPTIONAL { ?x :p ?y } }")
    with pytest.raises(SyntaxError_):
        parse_sparql("SELECT ?x WHERE { }")


def test_end_to_end_with_obda():
    from repro.dllite import (
        ABox,
        AtomicConcept,
        ConceptAssertion,
        Individual,
        parse_tbox,
    )
    from repro.obda import OBDASystem

    tbox = parse_tbox("Professor isa Teacher")
    abox = ABox([ConceptAssertion(AtomicConcept("Professor"), Individual("ada"))])
    system = OBDASystem(tbox, abox=abox)
    ucq = parse_sparql("SELECT ?x WHERE { ?x a :Teacher }")
    answers = system.certain_answers(ucq)
    assert answers == {(Individual("ada"),)}
