"""Property-based tests (hypothesis) for the core invariants.

These encode the central correctness claims of the paper:

* Theorem 1 — the digraph closure decides exactly the Φ_T subsumptions;
* computeUnsat — sound and complete unsatisfiability detection;
* the graph classifier agrees with the independent saturation oracle and
  with the brute-force finite-model semantics on every axiom shape;
* both concrete syntaxes (the textual DL-Lite grammar and OWL 2 QL
  functional style) round-trip: ``parse(serialize(T)) == T``.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.baselines import SaturationReasoner, make_reasoner
from repro.baselines.saturation import Saturation
from repro.core import GraphClassifier, ImplicationChecker, classify
from repro.core.closure import closure_bfs, closure_scc_bitset, transitive_closure
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
    RoleInclusion,
    TBox,
    find_countermodel,
)

CONCEPTS = [AtomicConcept(f"C{i}") for i in range(3)]
ROLES = [AtomicRole(f"P{i}") for i in range(2)]
BASIC_ROLES = ROLES + [InverseRole(role) for role in ROLES]
BASICS = CONCEPTS + [ExistentialRole(role) for role in BASIC_ROLES]

concepts_st = st.sampled_from(CONCEPTS)
basics_st = st.sampled_from(BASICS)
basic_roles_st = st.sampled_from(BASIC_ROLES)

concept_axiom_st = st.one_of(
    st.builds(ConceptInclusion, basics_st, basics_st),
    st.builds(
        ConceptInclusion, basics_st, st.builds(NegatedConcept, basics_st)
    ),
    st.builds(
        ConceptInclusion,
        basics_st,
        st.builds(QualifiedExistential, basic_roles_st, concepts_st),
    ),
)
role_axiom_st = st.one_of(
    st.builds(RoleInclusion, basic_roles_st, basic_roles_st),
    st.builds(RoleInclusion, basic_roles_st, st.builds(NegatedRole, basic_roles_st)),
)
axiom_st = st.one_of(concept_axiom_st, role_axiom_st)


def build_tbox(axioms) -> TBox:
    tbox = TBox(axioms)
    for concept in CONCEPTS:
        tbox.declare(concept)
    for role in ROLES:
        tbox.declare(role)
    return tbox


tbox_st = st.lists(axiom_st, min_size=0, max_size=8).map(build_tbox)

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(tbox_st)
@_settings
def test_graph_classifier_agrees_with_saturation(tbox):
    graph_result = make_reasoner("quonto-graph").classify_named(tbox)
    saturation_result = SaturationReasoner().classify_named(tbox)
    assert graph_result.agrees_with(saturation_result)


@given(tbox_st)
@_settings
def test_classification_is_sound_wrt_finite_models(tbox):
    """No classified subsumption admits a (small) countermodel."""
    classification = classify(tbox)
    for axiom in classification.subsumptions(named_only=True):
        assert find_countermodel(tbox, axiom, max_domain=2) is None, axiom


@given(tbox_st)
@_settings
def test_subsumption_is_reflexive_and_transitive(tbox):
    classification = classify(tbox)
    nodes = list(classification.graph.nodes)
    for node in nodes:
        assert classification.subsumes(node, node)
    import random as _random

    rng = _random.Random(0)
    for _ in range(30):
        a, b, c = (rng.choice(nodes) for _ in range(3))
        if classification.subsumes(b, a) and classification.subsumes(c, b):
            assert classification.subsumes(c, a)


@given(tbox_st)
@_settings
def test_unsat_is_exactly_self_disjointness(tbox):
    """S is unsatisfiable iff T ⊨ S ⊑ ¬S (checked via saturation)."""
    classification = classify(tbox)
    saturation = Saturation(tbox)
    for node in classification.graph.nodes:
        assert classification.is_unsatisfiable(node) == saturation.entails_negative(
            node, node
        ), node


@given(tbox_st, axiom_st)
@_settings
def test_implication_checker_never_crashes_and_is_sound(tbox, axiom):
    checker = ImplicationChecker.for_tbox(tbox)
    if checker.entails(axiom):
        assert find_countermodel(tbox, axiom, max_domain=2) is None


# -- serializer round-trips ---------------------------------------------------
#
# A wider axiom strategy than the classification one: attributes and
# functionality participate, because the serializers have dedicated code
# paths for them (DataSomeValuesFrom, DisjointDataProperties, funct).

from repro.dllite import (  # noqa: E402 — grouped with the strategies below
    AtomicAttribute,
    AttributeDomain,
    AttributeInclusion,
    FunctionalAttribute,
    FunctionalRole,
    NegatedAttribute,
    parse_owl_functional,
    parse_tbox,
    serialize_owl_functional,
    serialize_tbox,
)

ATTRIBUTES = [AtomicAttribute(f"U{i}") for i in range(2)]
attributes_st = st.sampled_from(ATTRIBUTES)
rich_basics_st = st.one_of(
    basics_st, st.builds(AttributeDomain, attributes_st)
)
rich_axiom_st = st.one_of(
    axiom_st,
    st.builds(ConceptInclusion, rich_basics_st, rich_basics_st),
    st.builds(AttributeInclusion, attributes_st, attributes_st),
    st.builds(
        AttributeInclusion,
        attributes_st,
        st.builds(NegatedAttribute, attributes_st),
    ),
    st.builds(FunctionalRole, basic_roles_st),
    st.builds(FunctionalAttribute, attributes_st),
)


def build_rich_tbox(axioms) -> TBox:
    tbox = build_tbox(axioms)
    for attribute in ATTRIBUTES:
        tbox.declare(attribute)
    return tbox


rich_tbox_st = st.lists(rich_axiom_st, min_size=0, max_size=10).map(build_rich_tbox)


@given(rich_tbox_st)
@_settings
def test_textual_syntax_round_trips(tbox):
    """parse_tbox(serialize_tbox(T)) reproduces T axiom-for-axiom."""
    parsed = parse_tbox(serialize_tbox(tbox), name=tbox.name)
    assert set(parsed) == set(tbox)
    assert parsed.signature == tbox.signature


@given(rich_tbox_st)
@_settings
def test_owl_functional_syntax_round_trips(tbox):
    """parse_owl_functional(serialize_owl_functional(T)) reproduces T."""
    parsed = parse_owl_functional(serialize_owl_functional(tbox))
    assert set(parsed.tbox) == set(tbox)
    assert parsed.tbox.signature == tbox.signature


@given(rich_tbox_st)
@_settings
def test_round_trip_preserves_classification(tbox):
    """Re-parsed ontologies classify identically (both syntaxes)."""
    engine = make_reasoner("quonto-graph")
    original = engine.classify_named(tbox)
    via_text = parse_tbox(serialize_tbox(tbox))
    via_owl = parse_owl_functional(serialize_owl_functional(tbox)).tbox
    assert original.agrees_with(engine.classify_named(via_text))
    assert original.agrees_with(engine.classify_named(via_owl))


@given(
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=0, max_size=30
    )
)
@settings(max_examples=80, deadline=None)
def test_closure_algorithms_equivalent(arcs):
    node_count = 12
    successors = [set() for _ in range(node_count)]
    for source, target in arcs:
        successors[source].add(target)
    assert closure_scc_bitset(successors) == closure_bfs(successors)
    assert transitive_closure(successors, "dense") == closure_bfs(successors)


@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=0, max_size=25
    )
)
@settings(max_examples=60, deadline=None)
def test_closure_is_idempotent(arcs):
    node_count = 10
    successors = [set() for _ in range(node_count)]
    for source, target in arcs:
        successors[source].add(target)
    closure = closure_scc_bitset(successors)
    # re-closing the closed graph changes nothing
    closed_successors = [
        {j for j in range(node_count) if mask >> j & 1} for mask in closure
    ]
    assert closure_scc_bitset(closed_successors) == closure
