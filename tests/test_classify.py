"""Unit tests for Φ_T and the Classification result object."""

import pytest

from repro.core import GraphClassifier, build_digraph, classify, phi_inclusions
from repro.core.closure import transitive_closure
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    RoleInclusion,
    parse_tbox,
)

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
P, R = AtomicRole("P"), AtomicRole("R")


def test_theorem_1_on_the_papers_example():
    # "consider an ontology containing subsumptions A1 ⊑ A2 and A2 ⊑ A3 ..."
    tbox = parse_tbox("A1 isa A2\nA2 isa A3")
    graph = build_digraph(tbox)
    closure = transitive_closure(graph.successors)
    phi = phi_inclusions(graph, closure)
    assert ConceptInclusion(AtomicConcept("A1"), AtomicConcept("A3")) in phi


def test_phi_excludes_reflexive_and_cross_sort():
    tbox = parse_tbox("A isa B\nP isa R")
    graph = build_digraph(tbox)
    closure = transitive_closure(graph.successors)
    phi = phi_inclusions(graph, closure)
    assert ConceptInclusion(A, A) not in phi
    for inclusion in phi:
        assert type(inclusion.lhs).__mro__  # well-formed axiom objects


def test_subsumers_and_subsumees(county_tbox):
    classification = classify(county_tbox)
    municipality = AtomicConcept("Municipality")
    county = AtomicConcept("County")
    assert county in classification.subsumers(municipality)
    assert municipality in classification.subsumees(county)
    assert classification.subsumes(county, municipality)
    assert not classification.subsumes(municipality, county)


def test_role_subsumption_from_role_inclusion(county_tbox):
    classification = classify(county_tbox)
    is_part_of = AtomicRole("isPartOf")
    located_in = AtomicRole("locatedIn")
    assert classification.subsumes(located_in, is_part_of)
    assert classification.subsumes(
        ExistentialRole(located_in), ExistentialRole(is_part_of)
    )
    assert classification.subsumes(
        InverseRole(located_in), InverseRole(is_part_of)
    )


def test_named_only_filters_existential_nodes(county_tbox):
    classification = classify(county_tbox)
    named = classification.subsumers(AtomicConcept("Municipality"), named_only=True)
    assert named == {AtomicConcept("Municipality"), AtomicConcept("County")}


def test_subsumptions_enumeration_counts(county_tbox):
    classification = classify(county_tbox)
    listed = list(classification.subsumptions(named_only=True))
    assert len(listed) == classification.subsumption_count(named_only=True)
    assert len(set(listed)) == len(listed)


def test_include_trivial_adds_reflexive_pairs():
    classification = classify(parse_tbox("A isa B"))
    with_trivial = set(classification.subsumptions(include_trivial=True))
    without = set(classification.subsumptions(include_trivial=False))
    assert ConceptInclusion(A, A) in with_trivial
    assert ConceptInclusion(A, A) not in without
    assert without < with_trivial


def test_equivalents_via_cycles():
    classification = classify(parse_tbox("A isa B\nB isa A\nB isa C"))
    assert classification.equivalents(A) == {A, B}
    classes = classification.equivalence_classes()
    assert {A, B} in classes
    assert {C} in classes


def test_direct_subsumptions_is_hasse_reduction():
    classification = classify(parse_tbox("A isa B\nB isa C\nA isa C"))
    edges = classification.direct_subsumptions()
    # A ⊑ C must be absent: it is implied through B.
    pairs = {(frozenset(child), frozenset(parent)) for child, parent in edges}
    assert (frozenset({A}), frozenset({B})) in pairs
    assert (frozenset({B}), frozenset({C})) in pairs
    assert (frozenset({A}), frozenset({C})) not in pairs


def test_unsat_subsumed_by_every_same_sort_node():
    classification = classify(parse_tbox("Dead isa A\nDead isa B\nA isa not B\nconcept C"))
    dead = AtomicConcept("Dead")
    assert classification.is_unsatisfiable(dead)
    assert classification.subsumes(AtomicConcept("C"), dead)
    assert dead in classification.unsatisfiable()


def test_declared_only_predicate_appears():
    classification = classify(parse_tbox("concept Lonely\nA isa B"))
    lonely = AtomicConcept("Lonely")
    assert classification.subsumers(lonely) == {lonely}
