"""Unit tests for the Presto-style datalog rewriter."""

import random

import pytest

from repro.dllite import ABox, parse_tbox
from repro.obda import (
    ABoxExtents,
    DatalogExtents,
    evaluate_ucq,
    parse_query,
    perfect_ref,
    presto_rewrite,
)
from repro.dllite.abox import ConceptAssertion, Individual, RoleAssertion
from repro.dllite.syntax import AtomicConcept, AtomicRole


def test_hierarchy_goes_to_rules_not_disjuncts():
    tbox = parse_tbox("\n".join(f"S{i} isa Top" for i in range(20)))
    query = parse_query("q(x) :- Top(x)")
    datalog = presto_rewrite(query, tbox)
    ucq = perfect_ref(query, tbox)
    # PerfectRef: 21 disjuncts; Presto: 1 disjunct + 21 flat rules.
    assert len(ucq) == 21
    assert len(datalog.ucq) == 1
    assert len(datalog.rules) == 21
    assert datalog.ucq.disjuncts[0].atoms[0].predicate == "Top*"


def test_rules_cover_existential_subsumees():
    tbox = parse_tbox("role teaches\nexists teaches isa Teacher")
    datalog = presto_rewrite(parse_query("q(x) :- Teacher(x)"), tbox)
    rule_bodies = {str(rule.body[0]) for rule in datalog.rules}
    assert "teaches(x, y)" in rule_bodies
    assert "Teacher(x)" in rule_bodies


def test_size_metric_counts_rules_and_query():
    tbox = parse_tbox("A isa B")
    datalog = presto_rewrite(parse_query("q(x) :- B(x)"), tbox)
    assert datalog.size == sum(1 + len(r.body) for r in datalog.rules) + 1


def test_unknown_predicates_stay_base():
    tbox = parse_tbox("A isa B")
    datalog = presto_rewrite(parse_query("q(x) :- Mystery(x)"), tbox)
    assert datalog.rules == []
    assert datalog.ucq.disjuncts[0].atoms[0].predicate == "Mystery"


def make_abox():
    abox = ABox()
    ada, logic = Individual("ada"), Individual("logic")
    abox.add(ConceptAssertion(AtomicConcept("Professor"), ada))
    abox.add(RoleAssertion(AtomicRole("teaches"), ada, logic))
    abox.add(ConceptAssertion(AtomicConcept("Student"), Individual("sam")))
    return abox


@pytest.mark.parametrize(
    "query_text",
    [
        "q(x) :- Person(x)",
        "q(x) :- Teacher(x)",
        "q(y) :- Course(y)",
        "q(x) :- Teacher(x), teaches(x, y)",
        "q(x, y) :- teaches(x, y)",
        "q(x) :- teaches(x, y), Course(y)",
    ],
)
def test_presto_equals_perfectref_on_university(query_text):
    tbox = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        Teacher isa Person
        Student isa Person
        Teacher isa exists teaches
        exists teaches isa Teacher
        exists teaches^- isa Course
        """
    )
    abox = make_abox()
    query = parse_query(query_text)
    via_perfectref = evaluate_ucq(perfect_ref(query, tbox), ABoxExtents(abox))
    datalog = presto_rewrite(query, tbox)
    via_presto = evaluate_ucq(
        datalog.ucq, DatalogExtents(datalog, ABoxExtents(abox))
    )
    assert via_presto == via_perfectref


def test_as_program_matches_flat_evaluation():
    """The general semi-naive engine and the flat fast path agree."""
    from repro.obda.datalog import ProgramExtents

    tbox = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        exists teaches isa Teacher
        exists teaches^- isa Course
        """
    )
    abox = make_abox()
    query = parse_query("q(x) :- Teacher(x)")
    datalog = presto_rewrite(query, tbox)
    base = ABoxExtents(abox)
    flat = evaluate_ucq(datalog.ucq, DatalogExtents(datalog, base))
    general = evaluate_ucq(datalog.ucq, ProgramExtents(datalog.as_program(), base))
    assert flat == general and flat


def test_presto_with_attributes():
    tbox = parse_tbox(
        """
        attribute salary, wage
        wage isa salary
        Employee isa domain(salary)
        """
    )
    from repro.dllite.abox import AttributeAssertion
    from repro.dllite.syntax import AtomicAttribute

    abox = ABox(
        [AttributeAssertion(AtomicAttribute("wage"), Individual("ada"), 10)]
    )
    query = parse_query("q(x, v) :- salary(x, v)")
    datalog = presto_rewrite(query, tbox)
    answers = evaluate_ucq(datalog.ucq, DatalogExtents(datalog, ABoxExtents(abox)))
    reference = evaluate_ucq(perfect_ref(query, tbox), ABoxExtents(abox))
    assert answers == reference == {(Individual("ada"), 10)}
