"""Unit tests for the differential oracle layer of ``repro.testkit``."""

from __future__ import annotations

import random

import pytest

from repro.baselines import make_reasoner
from repro.baselines.base import NamedClassification
from repro.dllite import (
    AtomicConcept,
    ConceptInclusion,
    NegatedConcept,
    TBox,
    parse_tbox,
)
from repro.errors import TimeoutExceeded
from repro.obda.system import OBDASystem
from repro.runtime.budget import Budget
from repro.testkit import (
    DEFAULT_ENGINES,
    Disagreement,
    diff_answers,
    diff_classifications,
    diff_engines,
    semantics_soundness,
)
from repro.testkit.generators import (
    FuzzProfile,
    direct_mapping_system,
    random_abox,
    random_profile_tbox,
    random_queries,
    random_tiny_tbox,
)

A, B, C = (AtomicConcept(name) for name in "ABC")


def _named(subs, unsat=()):
    return NamedClassification(frozenset(subs), frozenset(unsat))


class TestDiffClassifications:
    def test_identical_outputs_conform(self):
        result = _named([ConceptInclusion(A, B)], [C])
        assert diff_classifications("ref", result, "cand", result) == []

    def test_extra_subsumption_is_reported(self):
        reference = _named([ConceptInclusion(A, B)])
        candidate = _named([ConceptInclusion(A, B), ConceptInclusion(B, C)])
        problems = diff_classifications("ref", reference, "cand", candidate)
        assert [p.kind for p in problems] == ["classification"]
        assert "derives" in problems[0].detail

    def test_missing_subsumption_reported_only_for_complete_engines(self):
        reference = _named([ConceptInclusion(A, B), ConceptInclusion(B, C)])
        candidate = _named([ConceptInclusion(A, B)])
        complete = diff_classifications("ref", reference, "cand", candidate)
        assert [p.kind for p in complete] == ["classification"]
        assert "misses" in complete[0].detail
        incomplete = diff_classifications(
            "ref", reference, "cand", candidate, candidate_complete=False
        )
        assert incomplete == []

    def test_unsat_divergence_reported(self):
        reference = _named([], [A])
        candidate = _named([], [B])
        kinds = sorted(
            p.kind for p in diff_classifications("ref", reference, "cand", candidate)
        )
        assert kinds == ["unsat", "unsat"]


class TestDiffEngines:
    def test_default_lineup_conforms_on_fixture(self, county_tbox):
        assert diff_engines(county_tbox) == []

    def test_default_lineup_conforms_on_random_profile(self):
        rng = random.Random("testkit-oracle")
        for _ in range(3):
            tbox = random_profile_tbox(rng, FuzzProfile(max_concepts=15))
            assert diff_engines(tbox) == []

    def test_unsound_engine_is_caught(self, county_tbox):
        class Overclaiming:
            name = "overclaiming"
            complete = True

            def classify_named(self, tbox, watch=None):
                honest = make_reasoner("quonto-graph").classify_named(
                    tbox, watch=watch
                )
                bogus = ConceptInclusion(
                    AtomicConcept("Municipality"), AtomicConcept("State")
                )
                return NamedClassification(
                    honest.subsumptions | {bogus}, honest.unsatisfiable
                )

        problems = diff_engines(county_tbox, ["quonto-graph", Overclaiming()])
        assert any(
            p.kind == "classification" and p.left == "overclaiming"
            for p in problems
        )

    def test_untyped_crash_is_a_finding(self, county_tbox):
        class Crashing:
            name = "crashing"
            complete = True

            def classify_named(self, tbox, watch=None):
                raise KeyError("boom")

        problems = diff_engines(county_tbox, ["quonto-graph", Crashing()])
        assert [p.kind for p in problems] == ["error"]
        assert "KeyError" in problems[0].detail

    def test_typed_errors_propagate(self, county_tbox):
        budget = Budget(0.0, task="immediate")
        with pytest.raises(TimeoutExceeded):
            diff_engines(county_tbox, DEFAULT_ENGINES, budget=budget)


class TestSemanticsSoundness:
    def test_sound_classification_has_no_countermodels(self):
        rng = random.Random("tiny-sound")
        for _ in range(4):
            tiny = random_tiny_tbox(rng)
            assert semantics_soundness(tiny) == []

    def test_planted_unsound_claim_is_refuted(self):
        tbox = TBox([ConceptInclusion(A, B)], name="planted")
        tbox.declare(C)
        bogus = _named([ConceptInclusion(A, B), ConceptInclusion(B, C)])
        problems = semantics_soundness(tbox, classification=bogus)
        assert [p.kind for p in problems] == ["semantics"]
        assert "countermodel" in problems[0].detail

    def test_large_signatures_are_skipped(self):
        tbox = TBox(
            [ConceptInclusion(AtomicConcept(f"X{i}"), AtomicConcept(f"X{i+1}"))
             for i in range(8)],
            name="wide",
        )
        assert semantics_soundness(tbox, max_signature=5) == []


class TestDiffAnswers:
    def _systems_and_queries(self, seed="obda-agree"):
        rng = random.Random(seed)
        tbox = random_tiny_tbox(rng)
        abox = random_abox(rng, tbox)
        queries = random_queries(rng, tbox)
        systems = {
            "kb": OBDASystem(tbox, abox=abox),
            "sql": direct_mapping_system(tbox, abox),
        }
        return systems, queries

    def test_pipelines_agree_end_to_end(self):
        systems, queries = self._systems_and_queries()
        problems = diff_answers(
            systems, queries, methods=("perfectref", "perfectref-sql", "presto")
        )
        assert problems == []

    def test_dropped_data_is_detected(self):
        tbox = parse_tbox("Student isa Person", name="drop")
        from repro.dllite.abox import ABox, ConceptAssertion, Individual

        full = ABox([ConceptAssertion(AtomicConcept("Student"), Individual("a"))])
        systems = {
            "kb": OBDASystem(tbox, abox=full),
            "sql": direct_mapping_system(tbox, ABox()),
        }
        from repro.obda.cq_parser import parse_query

        query = parse_query("q(x) :- Person(x)")
        problems = diff_answers(systems, [query], methods=("perfectref",))
        assert len(problems) == 1
        assert problems[0].kind == "answers"

    def test_disagreement_renders_readably(self):
        problem = Disagreement("answers", "kb/presto", "sql/perfectref", "gap", "t")
        assert "kb/presto" in str(problem) and "on t" in str(problem)
