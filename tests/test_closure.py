"""Unit tests for the transitive-closure algorithms (all three agree)."""

import random

import pytest

from repro.core.closure import (
    CLOSURE_ALGORITHMS,
    closure_bfs,
    closure_dense,
    closure_scc_bitset,
    transitive_closure,
)
from repro.errors import TimeoutExceeded
from repro.util.timing import Stopwatch


def bits(mask):
    result = set()
    index = 0
    while mask:
        if mask & 1:
            result.add(index)
        mask >>= 1
        index += 1
    return result


def test_empty_graph():
    for algorithm in CLOSURE_ALGORITHMS:
        assert transitive_closure([], algorithm=algorithm) == []


def test_reflexivity_on_isolated_nodes():
    closure = transitive_closure([set(), set(), set()])
    assert [bits(m) for m in closure] == [{0}, {1}, {2}]


def test_simple_chain():
    closure = transitive_closure([{1}, {2}, set()])
    assert bits(closure[0]) == {0, 1, 2}
    assert bits(closure[1]) == {1, 2}
    assert bits(closure[2]) == {2}


def test_cycle_collapses_to_full_reachability():
    closure = transitive_closure([{1}, {2}, {0}])
    for mask in closure:
        assert bits(mask) == {0, 1, 2}


def test_diamond():
    closure = transitive_closure([{1, 2}, {3}, {3}, set()])
    assert bits(closure[0]) == {0, 1, 2, 3}
    assert bits(closure[1]) == {1, 3}
    assert bits(closure[2]) == {2, 3}


def test_deep_chain_no_recursion_error():
    n = 5000
    successors = [{i + 1} for i in range(n - 1)] + [set()]
    closure = closure_scc_bitset(successors)
    assert bits(closure[0]) == set(range(n))


@pytest.mark.parametrize("algorithm", sorted(CLOSURE_ALGORITHMS))
def test_algorithms_agree_on_random_graphs(algorithm):
    rng = random.Random(9)
    for _ in range(25):
        n = rng.randrange(1, 30)
        successors = [
            {rng.randrange(n) for _ in range(rng.randrange(4))} for _ in range(n)
        ]
        reference = closure_bfs(successors)
        assert transitive_closure(successors, algorithm=algorithm) == reference


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        transitive_closure([set()], algorithm="magic")


def test_budget_timeout_propagates():
    watch = Stopwatch(budget_s=0.0)
    n = 200
    successors = [{(i + 1) % n} for i in range(n)]
    with pytest.raises(TimeoutExceeded):
        # bfs checks the budget every 256 sources; scc checks per component
        closure_scc_bitset(successors, watch)
