"""Serialization round-trips at corpus scale (cross-format integration)."""

import pytest

from repro.corpus import load_profile
from repro.core import classify
from repro.dllite import (
    parse_owl_functional,
    parse_tbox,
    serialize_owl_functional,
    serialize_tbox,
)
from repro.graphical import diagram_to_tbox, tbox_to_diagram


@pytest.fixture(scope="module")
def corpus_tbox():
    return load_profile("Transportation", scale=0.3)


def test_textual_round_trip_at_scale(corpus_tbox):
    reparsed = parse_tbox(serialize_tbox(corpus_tbox))
    assert set(reparsed.axioms) == set(corpus_tbox.axioms)
    assert reparsed.signature == corpus_tbox.signature


def test_owlfs_round_trip_at_scale(corpus_tbox):
    reparsed = parse_owl_functional(serialize_owl_functional(corpus_tbox)).tbox
    assert set(reparsed.axioms) == set(corpus_tbox.axioms)
    assert reparsed.signature == corpus_tbox.signature


def test_diagram_round_trip_at_scale(corpus_tbox):
    regenerated = diagram_to_tbox(tbox_to_diagram(corpus_tbox))
    assert set(regenerated.axioms) == set(corpus_tbox.axioms)


def test_round_trips_preserve_classification(corpus_tbox):
    baseline = set(classify(corpus_tbox).subsumptions(named_only=True))
    via_owl = parse_owl_functional(serialize_owl_functional(corpus_tbox)).tbox
    assert set(classify(via_owl).subsumptions(named_only=True)) == baseline


def test_documentation_generates_at_scale(corpus_tbox):
    from repro.docs import generate_documentation

    text = generate_documentation(corpus_tbox)
    assert text.count("###") >= len(corpus_tbox.signature.concepts)
