"""Unit tests for SQL unfolding through the mappings."""

import pytest

from repro.dllite import AtomicConcept, AtomicRole, Individual
from repro.errors import MappingError
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    TargetAtom,
    parse_query,
    unfold,
)
from repro.obda.mapping import IriTemplate, ValueColumn


@pytest.fixture
def setup():
    db = Database()
    db.create_table("emp", ["pid", "dept"], [(1, "cs"), (2, "math")])
    db.create_table("dept", ["code", "head"], [("cs", 1), ("math", 2)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT pid FROM emp",
                [TargetAtom(AtomicConcept("Employee"), (IriTemplate("person/{pid}"),))],
            ),
            MappingAssertion(
                "SELECT pid, dept FROM emp",
                [
                    TargetAtom(
                        AtomicRole("worksFor"),
                        (IriTemplate("person/{pid}"), IriTemplate("dept/{dept}")),
                    )
                ],
            ),
            MappingAssertion(
                "SELECT code, head FROM dept",
                [
                    TargetAtom(
                        AtomicRole("headOf"),
                        (IriTemplate("person/{head}"), IriTemplate("dept/{code}")),
                    )
                ],
            ),
        ]
    )
    return db, mappings


def test_single_atom_unfolding(setup):
    db, mappings = setup
    unfolded = unfold(parse_query("q(x) :- Employee(x)"), mappings)
    answers = unfolded.execute(db)
    assert answers == {(Individual("person/1"),), (Individual("person/2"),)}


def test_join_on_matching_templates(setup):
    db, mappings = setup
    # join variable x produced by 'person/{pid}' and 'person/{head}' —
    # structurally identical templates, so the join goes through columns
    unfolded = unfold(parse_query("q(x, d) :- worksFor(x, d), headOf(x, d)"), mappings)
    answers = unfolded.execute(db)
    assert answers == {
        (Individual("person/1"), Individual("dept/cs")),
        (Individual("person/2"), Individual("dept/math")),
    }


def test_incompatible_templates_prune(setup):
    db, mappings = setup
    # y joins an IRI from 'dept/{dept}' with one from 'person/{pid}': disjoint
    unfolded = unfold(parse_query("q(x) :- worksFor(x, y), Employee(y)"), mappings)
    assert unfolded.size == 0
    assert unfolded.execute(db) == set()


def test_constant_parsed_against_template(setup):
    db, mappings = setup
    unfolded = unfold(parse_query("q(d) :- worksFor('person/1', d)"), mappings)
    assert unfolded.execute(db) == {(Individual("dept/cs"),)}


def test_constant_not_matching_template_prunes(setup):
    db, mappings = setup
    unfolded = unfold(parse_query("q(d) :- worksFor('employee:1', d)"), mappings)
    assert unfolded.size == 0


def test_boolean_query(setup):
    db, mappings = setup
    unfolded = unfold(parse_query("q() :- worksFor(x, 'dept/cs')"), mappings)
    assert unfolded.execute(db) == {()}
    empty = unfold(parse_query("q() :- worksFor(x, 'dept/law')"), mappings)
    assert empty.execute(db) == set()


def test_unmapped_predicate_contributes_nothing(setup):
    db, mappings = setup
    unfolded = unfold(parse_query("q(x) :- Ghost(x)"), mappings)
    assert unfolded.size == 0


def test_value_columns_flow_raw():
    db = Database()
    db.create_table("emp", ["pid", "wage"], [(1, 100)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT pid, wage FROM emp",
                [
                    TargetAtom(
                        __import__("repro.dllite", fromlist=["AtomicAttribute"]).AtomicAttribute(
                            "salary"
                        ),
                        (IriTemplate("person/{pid}"), ValueColumn("wage")),
                    )
                ],
            )
        ]
    )
    unfolded = unfold(parse_query("q(x, w) :- salary(x, w)"), mappings)
    assert unfolded.execute(db) == {(Individual("person/1"), 100)}


def test_union_source_mapping():
    """A mapping whose source is a UNION unfolds and executes correctly."""
    db = Database()
    db.create_table("profs", ["pid"], [(1,)])
    db.create_table("lects", ["pid"], [(2,)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT pid FROM profs UNION SELECT pid FROM lects",
                [TargetAtom(AtomicConcept("Teacher"), (IriTemplate("person/{pid}"),))],
            )
        ]
    )
    unfolded = unfold(parse_query("q(x) :- Teacher(x)"), mappings)
    assert unfolded.execute(db) == {
        (Individual("person/1"),),
        (Individual("person/2"),),
    }
