"""Suppression machinery: pragmas, baseline life cycle, ``--check``."""

import json
from pathlib import Path

from repro.analysis import (
    Baseline,
    BaselineEntry,
    PLACEHOLDER_REASON,
    analyze_source,
    run_lint,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"

VIOLATION = (
    "import threading\n"
    "\n"
    "class C:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.hits = 0\n"
    "    def locked(self):\n"
    "        with self._lock:\n"
    "            self.hits += 1\n"
    "    def unlocked(self):\n"
    "        self.hits += 1{pragma}\n"
)


def test_pragma_suppresses_exactly_its_line():
    flagged = analyze_source("x.py", VIOLATION.format(pragma=""))
    assert [f.rule for f in flagged] == ["RL001"]
    suppressed = analyze_source(
        "x.py", VIOLATION.format(pragma="  # repro-lint: disable=RL001")
    )
    assert suppressed == []


def test_pragma_on_another_line_does_not_suppress():
    source = "# repro-lint: disable=RL001\n" + VIOLATION.format(pragma="")
    assert [f.rule for f in analyze_source("x.py", source)] == ["RL001"]


def test_pragma_for_other_rule_does_not_suppress():
    source = VIOLATION.format(pragma="  # repro-lint: disable=RL005")
    assert [f.rule for f in analyze_source("x.py", source)] == ["RL001"]


def test_file_level_disable():
    source = "# repro-lint: disable-file=RL001\n" + VIOLATION.format(pragma="")
    assert analyze_source("x.py", source) == []


def test_pragma_disable_all():
    source = VIOLATION.format(pragma="  # repro-lint: disable=all")
    assert analyze_source("x.py", source) == []


# -- baseline life cycle -------------------------------------------------------


def _violations_path():
    return FIXTURES / "rl001_violations.py"


def test_baseline_absorbs_known_findings(tmp_path):
    report, raw = run_lint([_violations_path()])
    assert report.new and not report.baselined
    baseline = Baseline.from_findings(raw, Baseline())
    for entry in baseline.entries:
        entry.reason = "planted fixture"
    report2, _ = run_lint([_violations_path()], baseline=baseline)
    assert not report2.new
    assert len(report2.baselined) == len(raw)
    assert not report2.failed(check=True)


def test_new_unbaselined_finding_fails_check(tmp_path):
    _, raw = run_lint([_violations_path()])
    baseline = Baseline.from_findings(raw, Baseline())
    for entry in baseline.entries:
        entry.reason = "planted fixture"
    dropped = baseline.entries.pop()  # one finding is now *new*
    report, _ = run_lint([_violations_path()], baseline=baseline)
    assert len(report.new) == dropped.count
    assert report.failed(check=True)
    assert report.failed(check=False)


def test_stale_entry_fails_check_only(tmp_path):
    _, raw = run_lint([_violations_path()])
    baseline = Baseline.from_findings(raw, Baseline())
    for entry in baseline.entries:
        entry.reason = "planted fixture"
    baseline.entries.append(
        BaselineEntry(
            rule="RL001",
            path=_violations_path().as_posix(),
            code="self.gone += 1",
            count=1,
            reason="was fixed long ago",
        )
    )
    report, _ = run_lint([_violations_path()], baseline=baseline)
    assert not report.new
    assert [e.code for e in report.stale_entries] == ["self.gone += 1"]
    assert report.failed(check=True)
    assert not report.failed(check=False)


def test_unjustified_reason_fails_check(tmp_path):
    _, raw = run_lint([_violations_path()])
    baseline = Baseline.from_findings(raw, Baseline())
    assert all(e.reason == PLACEHOLDER_REASON for e in baseline.entries)
    report, _ = run_lint([_violations_path()], baseline=baseline)
    assert not report.new
    assert report.unjustified_entries
    assert report.failed(check=True)
    assert not report.failed(check=False)


def test_baseline_save_load_round_trip(tmp_path):
    _, raw = run_lint([_violations_path()])
    baseline = Baseline.from_findings(raw, Baseline())
    for entry in baseline.entries:
        entry.reason = "planted fixture"
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert [e.to_dict() for e in loaded.entries] == [
        e.to_dict() for e in baseline.entries
    ]


def test_update_baseline_cli_preserves_reasons(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert (
        main(
            [
                "lint",
                str(_violations_path()),
                "--baseline",
                str(path),
                "--update-baseline",
            ]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["entries"]
    # a freshly stamped baseline is unjustified, so --check refuses it
    assert (
        main(["lint", str(_violations_path()), "--baseline", str(path), "--check"])
        == 1
    )
    assert "unjustified" in capsys.readouterr().out
    for entry in payload["entries"]:
        entry["reason"] = "planted fixture"
    path.write_text(json.dumps(payload))
    assert (
        main(["lint", str(_violations_path()), "--baseline", str(path), "--check"])
        == 0
    )
    # reasons survive a second --update-baseline
    assert (
        main(
            [
                "lint",
                str(_violations_path()),
                "--baseline",
                str(path),
                "--update-baseline",
            ]
        )
        == 0
    )
    refreshed = json.loads(path.read_text())
    assert all(e["reason"] == "planted fixture" for e in refreshed["entries"])


def test_committed_baseline_entries_are_all_justified():
    baseline = Baseline.load(Path("lint-baseline.json"))
    assert baseline.entries, "repo baseline should carry the grandfathered set"
    assert baseline.unjustified() == []
