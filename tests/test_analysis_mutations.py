"""Seeded mutation tests: each rule pack catches a *historical* bug shape.

Every test takes a real source file that lints clean today, re-plants a
bug pattern this repository actually had (or a one-token slip of the
protocol that guards against it), and asserts the analyzer catches the
mutant.  This is the evidence that the packs encode the codebase's real
protocols rather than toy examples — if a refactor makes a mutation
string stop matching, the test fails loudly on the ``assert old in
source`` precondition, not silently.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

SRC = Path("src/repro")


def _findings(label: str, source: str, rule: str):
    return [f for f in analyze_source(label, source) if f.rule == rule]


def _mutate(relative: str, old: str, new: str, rule: str):
    path = SRC / relative
    label = path.as_posix()
    source = path.read_text()
    assert old in source, f"mutation anchor vanished from {relative}: {old!r}"
    before = _findings(label, source, rule)
    after = _findings(label, source.replace(old, new, 1), rule)
    return before, after


def test_rl001_catches_dropped_lock_order_declaration():
    """metrics.reset() nests instrument locks inside the registry lock;
    deleting the declared order must resurface the leaf-lock findings."""
    before, after = _mutate(
        "obs/metrics.py",
        '_LOCK_ORDER = ("self._lock", "counter._lock", "histogram._lock")',
        "_LOCK_ORDER = ()",
        "RL001",
    )
    assert before == []
    assert len(after) == 2
    assert all("nested lock" in f.message for f in after)


def test_rl001_catches_unlocking_a_guarded_read():
    """CacheStats.lookups was a torn read before this PR; reverting the
    fix (dropping the lock) must be caught."""
    before, after = _mutate(
        "perf/cache.py",
        "    @property\n"
        "    def lookups(self) -> int:\n"
        "        with self._lock:\n"
        "            return self.hits + self.misses",
        "    @property\n"
        "    def lookups(self) -> int:\n"
        "        return self.hits + self.misses",
        "RL001",
    )
    assert before == []
    assert len(after) == 1
    assert "torn" in after[0].message


def test_rl002_catches_the_pr7_setdefault_regression():
    """PR 7's stale-shared-index bug: StatisticsCatalog.index installed
    with setdefault kept serving pre-mutation rows.  Re-introducing the
    exact bug must trip RL002."""
    before, after = _mutate(
        "obda/sql/stats.py",
        "self._indexes[key] = (generation, index)",
        "self._indexes.setdefault(key, (generation, index))",
        "RL002",
    )
    assert before == []
    assert len(after) == 1
    assert "stale" in after[0].message and "PR-7" in after[0].message


def test_rl003_catches_a_scan_that_sheds_its_budget():
    """TableScanNode._execute polls before materializing; removing the
    poll reverts it to an execution node that ignores its deadline."""
    before, after = _mutate(
        "obda/sql/planner.py",
        "    def _execute(self, database, catalog, budget, observed):\n"
        "        if budget is not None:\n"
        "            budget.check()\n"
        "        table = database.table(self.table)",
        "    def _execute(self, database, catalog, budget, observed):\n"
        "        table = database.table(self.table)",
        "RL003",
    )
    assert before == []
    assert len(after) == 1
    assert "never" in after[0].message


def test_rl004_catches_a_degenerate_metric_name():
    """Registry aggregation relies on component.object.event paths;
    collapsing one to a bare word must be flagged."""
    before, after = _mutate(
        "obda/sql/backends.py",
        'metrics.counter("backend.sqlite.executions")',
        'metrics.counter("executions")',
        "RL004",
    )
    assert before == []
    assert len(after) == 1
    assert "convention" in after[0].message


def test_rl005_catches_a_quoting_helper_bypass():
    """Physical table names flow through _quote; concatenating the raw
    mapping-supplied name into DDL reopens identifier injection."""
    before, after = _mutate(
        "obda/sql/backends.py",
        'physical = _quote(f"d_{name}")',
        'physical = "d_" + name',
        "RL005",
    )
    assert before == []
    assert after
    assert "quoting" in after[0].message


@pytest.mark.parametrize(
    "relative",
    [
        "obs/metrics.py",
        "perf/cache.py",
        "obda/sql/stats.py",
        "obda/sql/planner.py",
    ],
)
def test_mutation_targets_lint_clean_unmutated(relative):
    path = SRC / relative
    assert analyze_source(path.as_posix(), path.read_text()) == []
