"""End-to-end tests for the conformance runner and its CLI command."""

from __future__ import annotations

from repro.cli import main
from repro.testkit import ConformanceConfig, ConformanceReport, run_conformance
from repro.testkit.generators import FuzzProfile

#: Small-but-real campaign knobs: every check family runs at least once.
_FAST = dict(
    rounds=3,
    semantics_every=1,
    obda_every=1,
    profile=FuzzProfile(max_concepts=12, max_roles=4),
)


def test_campaign_is_conformant_and_counts_checks():
    report = run_conformance(ConformanceConfig(seed=7, **_FAST))
    assert report.ok
    assert report.rounds_run == 3
    # per round: diff + metamorphic, plus semantics (x2 checks) and obda
    assert report.checks_run >= 3 * 3
    assert not report.stopped_early
    assert "conformant" in report.summary()


def test_campaign_is_deterministic():
    first = run_conformance(ConformanceConfig(seed=11, **_FAST))
    second = run_conformance(ConformanceConfig(seed=11, **_FAST))
    assert (first.rounds_run, first.checks_run) == (
        second.rounds_run,
        second.checks_run,
    )
    assert [str(p) for p in first.disagreements] == [
        str(p) for p in second.disagreements
    ]


def test_exhausted_budget_is_an_orderly_early_stop():
    report = run_conformance(
        ConformanceConfig(seed=7, rounds=50, budget_s=0.0)
    )
    assert report.stopped_early
    assert report.rounds_run < 50
    assert report.ok  # an early stop is not a disagreement
    assert "stopped early" in report.summary()


def test_report_summary_mentions_disagreements():
    from repro.testkit import Disagreement

    report = ConformanceReport(config=ConformanceConfig())
    report.disagreements.append(Disagreement("unsat", "a", "b", "detail"))
    assert not report.ok
    assert "1 disagreement(s)" in report.summary()


class TestCli:
    def test_conformance_command_smoke(self, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "7",
                "--rounds",
                "2",
                "--semantics-every",
                "1",
                "--obda-every",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "conformance seed=7" in output
        assert "conformant" in output

    def test_engine_subset_and_budget_flags(self, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "3",
                "--rounds",
                "2",
                "--engines",
                "quonto-graph,saturation",
                "--budget",
                "30",
                "--no-shrink",
            ]
        )
        assert code == 0
        assert "conformance seed=3" in capsys.readouterr().out

    def test_regression_dir_flag(self, tmp_path, capsys):
        code = main(
            [
                "conformance",
                "--seed",
                "5",
                "--rounds",
                "1",
                "--regressions",
                str(tmp_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        # a conformant run writes no reproducers
        assert list(tmp_path.iterdir()) == []
