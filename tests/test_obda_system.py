"""Integration tests for the full OBDA system."""

import pytest

from repro.dllite import (
    ABox,
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    RoleAssertion,
    parse_tbox,
)
from repro.errors import InconsistentOntology, ReproError
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    OBDASystem,
    TargetAtom,
)
from repro.obda.mapping import IriTemplate

METHODS = ("perfectref", "perfectref-sql", "presto")


@pytest.fixture
def university():
    tbox = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        Teacher isa Person
        Student isa Person
        Teacher isa exists teaches
        exists teaches isa Teacher
        exists teaches^- isa Course
        Student isa not Teacher
        funct teaches^-
        """
    )
    db = Database("campus")
    db.create_table(
        "staff",
        ["id", "role"],
        [(1, "prof"), (2, "prof"), (3, "lecturer")],
    )
    db.create_table("teaching", ["staff_id", "course"], [(1, "logic"), (2, "compilers")])
    db.create_table("enrolled", ["sid"], [(10,), (11,)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'prof'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'lecturer'",
                [TargetAtom(AtomicConcept("Teacher"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT staff_id, course FROM teaching",
                [
                    TargetAtom(
                        AtomicRole("teaches"),
                        (IriTemplate("person/{staff_id}"), IriTemplate("course/{course}")),
                    )
                ],
            ),
            MappingAssertion(
                "SELECT sid FROM enrolled",
                [TargetAtom(AtomicConcept("Student"), (IriTemplate("person/{sid}"),))],
            ),
        ]
    )
    return OBDASystem(tbox, mappings=mappings, database=db)


def test_construction_validation():
    tbox = parse_tbox("A isa B")
    with pytest.raises(ReproError):
        OBDASystem(tbox)
    with pytest.raises(ReproError):
        OBDASystem(tbox, mappings=MappingCollection(), database=None)
    with pytest.raises(ReproError):
        OBDASystem(
            tbox,
            mappings=MappingCollection(),
            database=Database(),
            abox=ABox(),
        )


@pytest.mark.parametrize("method", METHODS)
def test_all_methods_agree_on_person(university, method):
    answers = university.certain_answers("q(x) :- Person(x)", method=method)
    names = {str(a[0]) for a in answers}
    assert names == {"person/1", "person/2", "person/3", "person/10", "person/11"}


@pytest.mark.parametrize("method", METHODS)
def test_inferred_course_memberships(university, method):
    answers = university.certain_answers("q(y) :- Course(y)", method=method)
    assert {str(a[0]) for a in answers} == {"course/logic", "course/compilers"}


@pytest.mark.parametrize("method", METHODS)
def test_existential_witness_not_confused_with_answers(university, method):
    # grace (person/3) is a Teacher hence ∃teaches, but her course is an
    # unnamed witness — she must appear for q(x) but contribute no course.
    answers = university.certain_answers(
        "q(x) :- Teacher(x), teaches(x, y)", method=method
    )
    assert {str(a[0]) for a in answers} == {"person/1", "person/2", "person/3"}
    pairs = university.certain_answers("q(x, y) :- teaches(x, y)", method=method)
    assert len(pairs) == 2


def test_consistency_holds(university):
    assert university.is_consistent()
    assert university.inconsistency_witnesses() == []


def test_ni_violation_detected(university):
    # enrol a professor as a student: Student ⊓ Teacher is forbidden
    university.database["enrolled"].insert((1,))
    assert not university.is_consistent()
    witnesses = university.inconsistency_witnesses()
    assert any("negative inclusion" in witness for witness in witnesses)
    with pytest.raises(InconsistentOntology):
        university.certain_answers("q(x) :- Person(x)")


def test_functionality_violation_detected(university):
    # funct teaches⁻: one course, two teachers
    university.database["teaching"].insert((2, "logic"))
    assert not university.is_consistent()
    witnesses = university.inconsistency_witnesses()
    assert any("functionality" in witness for witness in witnesses)


def test_skip_consistency_check(university):
    university.database["enrolled"].insert((1,))
    answers = university.certain_answers(
        "q(x) :- Person(x)", check_consistency=False
    )
    assert answers  # evaluated anyway


def test_abox_mode():
    tbox = parse_tbox("Professor isa Teacher")
    abox = ABox([ConceptAssertion(AtomicConcept("Professor"), Individual("ada"))])
    system = OBDASystem(tbox, abox=abox)
    answers = system.certain_answers("q(x) :- Teacher(x)")
    assert answers == {(Individual("ada"),)}
    with pytest.raises(ReproError):
        system.certain_answers("q(x) :- Teacher(x)", method="perfectref-sql")


def test_unsat_predicate_with_instances_is_inconsistent():
    tbox = parse_tbox("Dead isa A\nDead isa B\nA isa not B")
    abox = ABox([ConceptAssertion(AtomicConcept("Dead"), Individual("x"))])
    system = OBDASystem(tbox, abox=abox)
    witnesses = system.inconsistency_witnesses()
    assert witnesses
    # an empty Dead extent is fine
    clean = OBDASystem(tbox, abox=ABox())
    assert clean.is_consistent()


def test_rewrite_only_api(university):
    ucq = university.rewrite("q(x) :- Person(x)")
    assert len(ucq) >= 4
    datalog = university.rewrite("q(x) :- Person(x)", method="presto")
    assert datalog.rules
    with pytest.raises(ReproError):
        university.rewrite("q(x) :- Person(x)", method="nope")
