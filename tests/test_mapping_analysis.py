"""Unit tests for the mapping analyzer and instance-level services."""

import pytest

from repro.dllite import AtomicConcept, AtomicRole, parse_tbox
from repro.errors import ReproError
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    OBDASystem,
    TargetAtom,
)
from repro.obda.mapping import IriTemplate, ValueColumn
from repro.obda.mapping_analysis import analyze_mappings


@pytest.fixture
def db():
    database = Database()
    database.create_table("staff", ["id", "role"], [(1, "prof")])
    return database


def good_mapping():
    return MappingAssertion(
        "SELECT id FROM staff",
        [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{id}"),))],
        identifier="m-good",
    )


def test_clean_mappings_yield_no_schema_issues(db):
    issues = analyze_mappings(MappingCollection([good_mapping()]), db)
    assert issues == []


def test_missing_table_reported(db):
    bad = MappingAssertion(
        "SELECT id FROM ghosts",
        [TargetAtom(AtomicConcept("Ghost"), (IriTemplate("g/{id}"),))],
        identifier="m-ghost",
    )
    issues = analyze_mappings(MappingCollection([bad]), db)
    assert any(
        issue.severity == "error" and "ghosts" in issue.message for issue in issues
    )


def test_missing_column_reported(db):
    bad = MappingAssertion(
        "SELECT wages FROM staff",
        [TargetAtom(AtomicConcept("Paid"), (IriTemplate("p/{wages}"),))],
    )
    issues = analyze_mappings(MappingCollection([bad]), db)
    assert any(issue.category == "schema" for issue in issues)


def test_template_column_not_produced(db):
    bad = MappingAssertion(
        "SELECT id FROM staff",
        [TargetAtom(AtomicConcept("Paid"), (IriTemplate("p/{salary}"),))],
        identifier="m-tmpl",
    )
    issues = analyze_mappings(MappingCollection([bad]), db)
    assert any("salary" in issue.message for issue in issues)


def test_duplicate_mapping_warned(db):
    issues = analyze_mappings(
        MappingCollection([good_mapping(), good_mapping()]), db
    )
    assert any("duplicate" in issue.message for issue in issues)


def test_coverage_against_tbox(db):
    tbox = parse_tbox("Professor isa Teacher")
    issues = analyze_mappings(MappingCollection([good_mapping()]), db, tbox)
    messages = [issue.message for issue in issues]
    assert any("'Teacher' has no mapping" in m for m in messages)
    assert not any("'Professor'" in m and "no mapping" in m for m in messages)


def test_unknown_mapped_predicate_warned(db):
    tbox = parse_tbox("Teacher isa Person")
    issues = analyze_mappings(MappingCollection([good_mapping()]), db, tbox)
    assert any(
        "not in the ontology signature" in issue.message for issue in issues
    )


def test_mapping_into_unsatisfiable_predicate_is_error(db):
    tbox = parse_tbox(
        "Professor isa A\nProfessor isa B\nA isa not B"
    )
    issues = analyze_mappings(MappingCollection([good_mapping()]), db, tbox)
    assert any(
        issue.severity == "error" and "unsatisfiable" in issue.message
        for issue in issues
    )


def test_obda_system_facade(db):
    tbox = parse_tbox("Professor isa Teacher")
    system = OBDASystem(
        tbox, mappings=MappingCollection([good_mapping()]), database=db
    )
    issues = system.analyze_mappings()
    assert all(issue.severity in ("error", "warning") for issue in issues)
    abox_system = OBDASystem(tbox, abox=__import__("repro.dllite", fromlist=["ABox"]).ABox())
    with pytest.raises(ReproError):
        abox_system.analyze_mappings()


def test_instance_services(db):
    tbox = parse_tbox("role teaches\nProfessor isa Teacher\nTeacher isa exists teaches")
    system = OBDASystem(
        tbox, mappings=MappingCollection([good_mapping()]), database=db
    )
    names = {str(a[0]) for a in system.instances_of("Teacher")}
    assert names == {"p/1"}
    assert system.instance_check("exists teaches", "p/1")
    assert not system.instance_check("Student", "p/1")


def test_issue_rendering():
    from repro.obda.mapping_analysis import MappingIssue

    issue = MappingIssue("error", "schema", "boom", "m1")
    assert str(issue) == "[error/schema] boom (mapping m1)"
