"""Unit tests for SQL text rendering of algebra trees."""

import pytest

from repro.dllite import AtomicConcept, AtomicRole, Individual, parse_tbox
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    TargetAtom,
    parse_query,
    parse_sql,
    perfect_ref,
    unfold,
)
from repro.obda.mapping import IriTemplate
from repro.obda.sql import algebra_to_sql, evaluate
from repro.obda.sql.algebra import Condition, Const, Projection, Scan, Selection


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "staff", ["id", "role"], [(1, "prof"), (2, "lect"), (3, "prof")]
    )
    database.create_table("teaching", ["sid", "course"], [(1, "logic"), (3, "sets")])
    return database


def test_simple_select(db):
    expr = Projection(
        Selection(Scan("staff"), (Condition("role", Const("prof"), "="),)),
        ("staff.id",),
        ("id",),
    )
    sql = algebra_to_sql(expr)
    assert sql == "SELECT DISTINCT staff.id FROM staff WHERE role = 'prof'"


def test_rendered_sql_round_trips_through_the_parser(db):
    """What we render parses back and returns the same rows."""
    original = parse_sql("SELECT id FROM staff WHERE role = 'prof'")
    sql = algebra_to_sql(original)
    reparsed = parse_sql(sql)
    assert {row for row in evaluate(reparsed, db).rows} == {
        row for row in evaluate(original, db).rows
    }


def test_string_literal_escaping():
    expr = Selection(Scan("staff"), (Condition("role", Const("o'brien"), "!="),))
    sql = algebra_to_sql(expr)
    assert "role <> 'o''brien'" in sql


def test_union_renders_at_top_level(db):
    expr = parse_sql("SELECT id FROM staff UNION SELECT sid FROM teaching")
    sql = algebra_to_sql(expr)
    assert sql.count("SELECT DISTINCT") == 2
    assert " UNION " in sql


def test_unfolded_query_sql(db):
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'prof'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{id}"),))],
            ),
            MappingAssertion(
                "SELECT sid, course FROM teaching",
                [
                    TargetAtom(
                        AtomicRole("teaches"),
                        (IriTemplate("p/{sid}"), IriTemplate("c/{course}")),
                    )
                ],
            ),
        ]
    )
    tbox = parse_tbox("role teaches\nProfessor isa Teacher\nexists teaches isa Teacher")
    unfolded = unfold(
        perfect_ref(parse_query("q(x) :- Teacher(x)"), tbox), mappings
    )
    sql = unfolded.sql()
    assert "UNION" in sql
    assert "teaching" in sql and "staff" in sql
    # and the SQL text matches what the algebra actually computes
    answers = unfolded.execute(db)
    assert (Individual("p/1"),) in answers
    assert (Individual("p/2"),) not in answers


def test_empty_unfolding_sql_comment():
    unfolded = unfold(
        parse_query("q(x) :- Unmapped(x)"), MappingCollection([])
    )
    assert unfolded.sql().startswith("--")
