"""Unit tests for SQL text rendering of algebra trees."""

import sqlite3

import pytest

from repro.dllite import AtomicConcept, AtomicRole, Individual, parse_tbox
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    TargetAtom,
    parse_query,
    parse_sql,
    perfect_ref,
    unfold,
)
from repro.obda.mapping import IriTemplate
from repro.obda.sql import algebra_to_sql, evaluate
from repro.obda.sql.algebra import (
    Condition,
    Const,
    Join,
    Projection,
    Scan,
    Selection,
    UnionAll,
)


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "staff", ["id", "role"], [(1, "prof"), (2, "lect"), (3, "prof")]
    )
    database.create_table("teaching", ["sid", "course"], [(1, "logic"), (3, "sets")])
    return database


def test_simple_select(db):
    expr = Projection(
        Selection(Scan("staff"), (Condition("role", Const("prof"), "="),)),
        ("staff.id",),
        ("id",),
    )
    sql = algebra_to_sql(expr)
    assert sql == "SELECT DISTINCT staff.id FROM staff WHERE role = 'prof'"


def test_rendered_sql_round_trips_through_the_parser(db):
    """What we render parses back and returns the same rows."""
    original = parse_sql("SELECT id FROM staff WHERE role = 'prof'")
    sql = algebra_to_sql(original)
    reparsed = parse_sql(sql)
    assert {row for row in evaluate(reparsed, db).rows} == {
        row for row in evaluate(original, db).rows
    }


def test_string_literal_escaping():
    expr = Selection(Scan("staff"), (Condition("role", Const("o'brien"), "!="),))
    sql = algebra_to_sql(expr)
    assert "role <> 'o''brien'" in sql


def test_union_renders_at_top_level(db):
    expr = parse_sql("SELECT id FROM staff UNION SELECT sid FROM teaching")
    sql = algebra_to_sql(expr)
    assert sql.count("SELECT DISTINCT") == 2
    assert " UNION " in sql


def test_unfolded_query_sql(db):
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'prof'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{id}"),))],
            ),
            MappingAssertion(
                "SELECT sid, course FROM teaching",
                [
                    TargetAtom(
                        AtomicRole("teaches"),
                        (IriTemplate("p/{sid}"), IriTemplate("c/{course}")),
                    )
                ],
            ),
        ]
    )
    tbox = parse_tbox("role teaches\nProfessor isa Teacher\nexists teaches isa Teacher")
    unfolded = unfold(
        perfect_ref(parse_query("q(x) :- Teacher(x)"), tbox), mappings
    )
    sql = unfolded.sql()
    assert "UNION" in sql
    assert "teaching" in sql and "staff" in sql
    # and the SQL text matches what the algebra actually computes
    answers = unfolded.execute(db)
    assert (Individual("p/1"),) in answers
    assert (Individual("p/2"),) not in answers


def _sqlite_from(database):
    """A real sqlite3 replica of *database* (values shipped verbatim)."""
    connection = sqlite3.connect(":memory:")
    for table in database.tables():
        columns = ", ".join(f'"{column}"' for column in table.columns)
        connection.execute(f'CREATE TABLE "{table.name}" ({columns})')
        placeholders = ", ".join("?" for _ in table.columns)
        connection.executemany(
            f'INSERT INTO "{table.name}" VALUES ({placeholders})',
            [tuple(row) for row in table.rows],
        )
    return connection


@pytest.mark.parametrize(
    "text",
    [
        "SELECT id FROM staff WHERE role = 'prof'",
        "SELECT id, role FROM staff WHERE role != 'prof'",
        "SELECT staff.id, course FROM staff JOIN teaching ON id = sid",
        "SELECT id FROM staff WHERE role = 'prof' UNION SELECT sid FROM teaching",
        "SELECT a.id, b.id FROM staff AS a, staff AS b WHERE a.role = b.role",
    ],
)
def test_rendered_sql_executes_on_sqlite(db, text):
    """render → sqlite3 execute → rows equal algebra.evaluate."""
    expression = parse_sql(text)
    sql = algebra_to_sql(expression)
    expected = {tuple(row) for row in evaluate(expression, db).rows}
    connection = _sqlite_from(db)
    try:
        assert set(connection.execute(sql).fetchall()) == expected
    finally:
        connection.close()


def test_null_literal_renders_null_safe():
    equal = Selection(Scan("staff"), (Condition("role", Const(None), "="),))
    assert "role IS NULL" in algebra_to_sql(equal)
    unequal = Selection(Scan("staff"), (Condition("role", Const(None), "!="),))
    assert "role IS NOT NULL" in algebra_to_sql(unequal)


def test_null_condition_executes_on_sqlite(db):
    db.create_table("review", ["rid", "grade"], [(1, "pass"), (2, None), (3, None)])
    expression = Projection(
        Selection(Scan("review"), (Condition("grade", Const(None), "="),)),
        ("review.rid",),
        ("rid",),
    )
    connection = _sqlite_from(db)
    try:
        rows = set(connection.execute(algebra_to_sql(expression)).fetchall())
    finally:
        connection.close()
    assert rows == {(2,), (3,)}


def test_reserved_identifiers_are_quoted():
    expression = Projection(
        Selection(Scan("select"), (Condition("from", Const("x"), "="),)),
        ("select.from",),
        ("order",),
    )
    sql = algebra_to_sql(expression)
    assert 'FROM "select"' in sql
    assert '"select"."from" AS "order"' in sql
    assert '"from" = \'x\'' in sql


def test_exotic_identifiers_are_quoted_and_executable():
    database = Database()
    database.create_table("odd table", ["the id", "group"], [(1, "a"), (2, "b")])
    expression = Projection(
        Selection(Scan("odd table"), (Condition("group", Const("a"), "="),)),
        ("odd table.the id",),
        ("the id",),
    )
    sql = algebra_to_sql(expression)
    assert '"odd table"' in sql and '"the id"' in sql and '"group"' in sql
    connection = _sqlite_from(database)
    try:
        assert set(connection.execute(sql).fetchall()) == {(1,)}
    finally:
        connection.close()


def test_generated_aliases_are_deterministic_and_unique(db):
    parts = parse_sql("SELECT id FROM staff UNION SELECT sid FROM teaching")
    expression = Join(parts, parts, on=())
    sql = algebra_to_sql(expression)
    assert "AS t1" in sql and "AS t2" in sql
    assert sql == algebra_to_sql(expression)  # stable across renders
    connection = _sqlite_from(db)
    try:
        rows = set(connection.execute(sql).fetchall())
    finally:
        connection.close()
    expected = {tuple(row) for row in evaluate(expression, db).rows}
    assert rows == expected


def test_empty_unfolding_sql_comment():
    unfolded = unfold(
        parse_query("q(x) :- Unmapped(x)"), MappingCollection([])
    )
    assert unfolded.sql().startswith("--")
