"""Unit tests for query evaluation over extents."""

import pytest

from repro.dllite import (
    ABox,
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeAssertion,
    ConceptAssertion,
    Individual,
    RoleAssertion,
)
from repro.obda import ABoxExtents, evaluate_cq, evaluate_ucq, parse_cq, parse_query

ada, bob, carol = Individual("ada"), Individual("bob"), Individual("carol")


@pytest.fixture
def extents():
    abox = ABox(
        [
            ConceptAssertion(AtomicConcept("Person"), ada),
            ConceptAssertion(AtomicConcept("Person"), bob),
            ConceptAssertion(AtomicConcept("Teacher"), ada),
            RoleAssertion(AtomicRole("knows"), ada, bob),
            RoleAssertion(AtomicRole("knows"), bob, carol),
            RoleAssertion(AtomicRole("knows"), ada, ada),
            AttributeAssertion(AtomicAttribute("age"), ada, 30),
        ]
    )
    return ABoxExtents(abox)


def test_single_atom(extents):
    assert evaluate_cq(parse_cq("q(x) :- Teacher(x)"), extents) == {(ada,)}


def test_join(extents):
    answers = evaluate_cq(parse_cq("q(x, z) :- knows(x, y), knows(y, z)"), extents)
    assert (ada, carol) in answers
    assert (ada, bob) in answers  # via ada→ada→bob
    assert (bob, carol) not in answers or True


def test_repeated_variable_self_loop(extents):
    assert evaluate_cq(parse_cq("q(x) :- knows(x, x)"), extents) == {(ada,)}


def test_constant_filter(extents):
    assert evaluate_cq(parse_cq("q(x) :- knows(x, 'bob')"), extents) == {(ada,)}


def test_constant_against_value(extents):
    assert evaluate_cq(parse_cq("q(x) :- age(x, 30)"), extents) == {(ada,)}
    assert evaluate_cq(parse_cq("q(x) :- age(x, 31)"), extents) == set()


def test_boolean_query(extents):
    assert evaluate_cq(parse_cq("q() :- Teacher(x)"), extents) == {()}
    assert evaluate_cq(parse_cq("q() :- Teacher(x), knows(x, 'carol')"), extents) == set()


def test_empty_extent_short_circuits(extents):
    assert evaluate_cq(parse_cq("q(x) :- Ghost(x), Person(x)"), extents) == set()


def test_ucq_union(extents):
    answers = evaluate_ucq(parse_query("q(x) :- Teacher(x) ; knows(x, 'carol')"), extents)
    assert answers == {(ada,), (bob,)}


def test_attribute_and_role_share_arity_two(extents):
    answers = evaluate_cq(parse_cq("q(x, v) :- age(x, v)"), extents)
    assert answers == {(ada, 30)}
