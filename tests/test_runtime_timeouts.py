"""Timeout-path coverage for every classification engine.

Two properties, asserted per engine in the registry:

1. **Prompt abort** — under a tiny budget on an ontology the engine
   cannot possibly finish, it raises :class:`TimeoutExceeded` within a
   small tolerance (no runaway loops between budget polls).
2. **Never a silent partial result** — under a generous budget the
   engine returns *exactly* what it returns unbudgeted; a budget either
   aborts with an exception or has no effect on the answer.

The (profile, scale) pairs are calibrated so the workload saturates the
budget for that engine while loading stays cheap.
"""

import time

import pytest

from repro.baselines import REASONER_FACTORIES, make_reasoner
from repro.corpus import load_profile
from repro.errors import TimeoutExceeded
from repro.runtime import Budget

TINY_BUDGET_S = 0.01
#: Generous CI tolerance on abort latency (measured worst case: ~0.09s).
ABORT_TOLERANCE_S = 1.5

#: Per-engine workloads large enough that 10ms is never sufficient.
ABORT_CASES = [
    ("quonto-graph", "FMA 3.2.1", 1.0),
    ("cb-consequence", "FMA 3.2.1", 1.0),
    ("saturation", "Galen", 0.1),
    ("tableau-pairwise", "Galen", 0.4),
    ("tableau-memoized", "Galen", 0.4),
    ("tableau-dense", "Galen", 0.4),
    ("fallback-chain", "Galen", 0.4),
]


def test_every_registered_engine_has_an_abort_case():
    assert {engine for engine, _, _ in ABORT_CASES} == set(REASONER_FACTORIES)


@pytest.mark.parametrize("engine,profile,scale", ABORT_CASES)
def test_tiny_budget_aborts_promptly(engine, profile, scale):
    tbox = load_profile(profile, scale=scale)
    reasoner = make_reasoner(engine)
    watch = Budget(TINY_BUDGET_S, task=f"{engine} on {profile}")
    started = time.monotonic()
    with pytest.raises(TimeoutExceeded) as info:
        reasoner.classify_named(tbox, watch=watch)
    elapsed = time.monotonic() - started
    assert elapsed < ABORT_TOLERANCE_S, (
        f"{engine} took {elapsed:.2f}s to notice a {TINY_BUDGET_S}s budget"
    )
    assert info.value.budget_s == TINY_BUDGET_S
    assert info.value.task  # the error names the overrunning task


@pytest.fixture(scope="module")
def mouse():
    # Small enough that every engine finishes unbudgeted in ~0.1s.
    return load_profile("Mouse", scale=0.3)


@pytest.mark.parametrize("engine", sorted(REASONER_FACTORIES))
def test_generous_budget_never_changes_the_answer(engine, mouse):
    import warnings

    reasoner = make_reasoner(engine)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # fallback chains may flag degraded
        unbudgeted = reasoner.classify_named(mouse, watch=None)
        budgeted = make_reasoner(engine).classify_named(
            mouse, watch=Budget(60.0, task=f"{engine} on mouse")
        )
    assert budgeted.agrees_with(unbudgeted)
    assert len(budgeted) > 0
