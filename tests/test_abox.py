"""Unit tests for the ABox container."""

import pytest

from repro.dllite import (
    ABox,
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeAssertion,
    ConceptAssertion,
    Individual,
    RoleAssertion,
)

A = AtomicConcept("A")
P = AtomicRole("P")
U = AtomicAttribute("u")
ann, bob = Individual("ann"), Individual("bob")


def test_add_and_indexes():
    abox = ABox(
        [
            ConceptAssertion(A, ann),
            RoleAssertion(P, ann, bob),
            AttributeAssertion(U, bob, 42),
        ]
    )
    assert abox.concept_instances(A) == {ann}
    assert abox.role_pairs(P) == {(ann, bob)}
    assert abox.attribute_pairs(U) == {(bob, 42)}
    assert len(abox) == 3


def test_missing_predicates_have_empty_extents():
    abox = ABox()
    assert abox.concept_instances(A) == set()
    assert abox.role_pairs(P) == set()
    assert abox.attribute_pairs(U) == set()


def test_deduplication():
    abox = ABox()
    assert abox.add(ConceptAssertion(A, ann)) is True
    assert abox.add(ConceptAssertion(A, ann)) is False
    assert abox.extend([ConceptAssertion(A, ann), ConceptAssertion(A, bob)]) == 1


def test_individuals_across_assertion_kinds():
    abox = ABox(
        [
            RoleAssertion(P, ann, bob),
            AttributeAssertion(U, Individual("carol"), "x"),
        ]
    )
    assert abox.individuals() == {ann, bob, Individual("carol")}


def test_membership_and_copy():
    assertion = ConceptAssertion(A, ann)
    abox = ABox([assertion])
    assert assertion in abox
    clone = abox.copy()
    clone.add(ConceptAssertion(A, bob))
    assert len(abox) == 1 and len(clone) == 2


def test_add_rejects_garbage():
    with pytest.raises(TypeError):
        ABox().add(("A", "ann"))
