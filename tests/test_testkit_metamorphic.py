"""Unit tests for the metamorphic invariant battery of ``repro.testkit``."""

from __future__ import annotations

import random

from repro.baselines import make_reasoner
from repro.baselines.base import NamedClassification
from repro.dllite import TBox
from repro.testkit import (
    check_duplication,
    check_entailed_addition,
    check_module_preservation,
    check_order_irrelevance,
    check_renaming,
    check_union_monotonicity,
    run_metamorphic_checks,
)
from repro.testkit.generators import FuzzProfile, random_profile_tbox
from repro.testkit.transform import (
    random_renaming,
    rename_tbox,
    reorder_tbox,
)


def _tbox(seed: str) -> TBox:
    return random_profile_tbox(random.Random(seed), FuzzProfile(max_concepts=15))


class TestInvariantsHoldOnHealthyEngines:
    def test_full_battery_on_fixture(self, county_tbox):
        rng = random.Random("meta-fixture")
        other = _tbox("meta-other")
        assert run_metamorphic_checks(county_tbox, rng, other=other) == []

    def test_full_battery_on_random_profiles(self):
        for seed in ("m1", "m2", "m3"):
            rng = random.Random(seed)
            tbox = _tbox(seed)
            assert run_metamorphic_checks(tbox, rng, other=_tbox(seed + "x")) == []

    def test_battery_on_every_default_engine(self, university_tbox):
        for name in ("saturation", "tableau-pairwise", "tableau-dense"):
            rng = random.Random(f"meta-{name}")
            engine = make_reasoner(name)
            assert run_metamorphic_checks(university_tbox, rng, engine) == []


class TestTransforms:
    def test_renaming_is_injective_and_invertible(self, county_tbox):
        rng = random.Random("ren")
        renaming = random_renaming(rng, county_tbox)
        names = set(county_tbox.signature)
        mapped = {renaming(p.name) for p in names}
        assert len(mapped) == len(names)
        inverse = renaming.inverse()
        assert {inverse(name) for name in mapped} == {p.name for p in names}

    def test_rename_tbox_preserves_axiom_count(self, university_tbox):
        rng = random.Random("ren2")
        renamed = rename_tbox(university_tbox, random_renaming(rng, university_tbox))
        assert len(renamed) == len(university_tbox)
        assert set(renamed.signature) != set(university_tbox.signature)

    def test_reorder_preserves_axiom_set(self, university_tbox):
        shuffled = reorder_tbox(university_tbox, random.Random("ord"))
        assert set(shuffled) == set(university_tbox)
        duplicated = reorder_tbox(
            university_tbox, random.Random("dup"), duplicate=True
        )
        assert set(duplicated) == set(university_tbox)


class _ForgetfulEngine:
    """Classifies correctly, then forgets everything about the last axiom.

    Order-sensitive on purpose: reordering changes which axiom is "last",
    so the order/duplication invariants must flag it.
    """

    name = "forgetful"
    complete = True

    def __init__(self):
        self._inner = make_reasoner("quonto-graph")

    def classify_named(self, tbox, watch=None):
        axioms = list(tbox)
        trimmed = TBox(axioms[:-1], name=tbox.name) if axioms else tbox
        for predicate in tbox.signature:
            trimmed.declare(predicate)
        return self._inner.classify_named(trimmed, watch=watch)


class _RenameSensitiveEngine:
    """Correct, except it refuses to derive anything about predicate A0."""

    name = "name-biased"
    complete = True

    def __init__(self):
        self._inner = make_reasoner("quonto-graph")

    def classify_named(self, tbox, watch=None):
        honest = self._inner.classify_named(tbox, watch=watch)
        return NamedClassification(
            frozenset(
                axiom
                for axiom in honest.subsumptions
                if "A0" not in (axiom.lhs.name, axiom.rhs.name)
            ),
            honest.unsatisfiable,
        )


class TestInvariantsCatchPlantedBugs:
    def test_order_sensitivity_is_caught(self):
        from repro.dllite import parse_tbox

        # A pure chain: dropping any one axiom loses different subsumptions,
        # so whatever the shuffle puts last, the trimmed results differ.
        chain = parse_tbox(
            "\n".join(f"A{i} isa A{i + 1}" for i in range(6)), name="chain"
        )
        rng = random.Random("catch-order")
        problems = check_order_irrelevance(chain, rng, _ForgetfulEngine())
        assert problems and problems[0].kind == "metamorphic:order"

    def test_renaming_sensitivity_is_caught(self):
        from repro.dllite import parse_tbox

        tbox = parse_tbox("A0 isa A1\nA1 isa A2", name="biased")
        rng = random.Random("catch-rename")
        problems = check_renaming(tbox, rng, _RenameSensitiveEngine())
        assert problems and problems[0].kind == "metamorphic:renaming"


class TestIndividualInvariants:
    def test_duplication_and_entailed_addition(self, university_tbox):
        rng = random.Random("indiv")
        assert check_duplication(university_tbox, rng) == []
        assert check_entailed_addition(university_tbox, rng) == []

    def test_module_preservation(self, county_tbox, university_tbox):
        assert check_module_preservation(county_tbox) == []
        merged = county_tbox.copy(name="merged")
        merged.extend(university_tbox)
        for predicate in university_tbox.signature:
            merged.declare(predicate)
        assert check_module_preservation(merged) == []

    def test_union_monotonicity(self, county_tbox, university_tbox):
        assert check_union_monotonicity(county_tbox, university_tbox) == []
