"""Unit tests for the cost-based SQL planner (repro.obda.sql.planner).

The planner is an optimizer, never a second source of truth: every test
here checks a planned execution against the naive algebra evaluator on
the same tree, plus the structural claims (index dispatch, semi-joins,
opaque fallback, plan reports) that the equivalence tests alone would
not pin.
"""

from __future__ import annotations

import pytest

from repro.dllite import ABox, AtomicConcept, Individual, parse_tbox
from repro.dllite.abox import ConceptAssertion, RoleAssertion
from repro.dllite.syntax import AtomicRole
from repro.obda.cq_parser import parse_query
from repro.obda.sql import algebra
from repro.obda.sql.algebra import (
    Condition,
    Const,
    Join,
    Projection,
    Rename,
    Scan,
    Selection,
    evaluate,
)
from repro.obda.sql.database import Database
from repro.obda.sql.planner import (
    HashJoinNode,
    OpaqueNode,
    Planner,
    PlannedQuery,
    ProjectNode,
    TableScanNode,
)
from repro.obda.sql.stats import (
    JoinIndex,
    StatisticsCatalog,
    TableStatistics,
    join_key,
    join_keys,
)
from repro.testkit.generators import direct_mapping_system


class CountingBudget:
    """Duck-typed Budget that counts work instead of timing it."""

    def __init__(self):
        self.ticks = 0

    def check(self):
        pass

    def tick(self, stride=None):
        self.ticks += 1


@pytest.fixture
def db():
    database = Database("planner-test")
    database.create_table(
        "emp",
        ["id", "dept"],
        [(1, "a"), (2, "a"), (3, "b"), (4, "c")],
    )
    database.create_table(
        "dept",
        ["name", "head"],
        [("a", 1), ("b", 3), ("c", 4), ("d", 4)],
    )
    database.create_table(
        "skill",
        ["eid", "tag"],
        [(1, "ml"), (3, "db"), (3, "ml"), (2, "db"), (4, "ml"), (4, "db")],
    )
    return database


def unfolder_shaped_tree(distinct=True):
    """The shape the unfolder emits: conditions parked in one Selection
    above a condition-less Join of Renamed Scans."""
    join = Join(
        Join(Rename(Scan("emp"), "q0"), Rename(Scan("dept"), "q1"), on=()),
        Rename(Scan("skill"), "q2"),
        on=(),
    )
    selected = Selection(
        join,
        (
            Condition("q0.dept", "q1.name", "="),
            Condition("q0.id", "q2.eid", "="),
            Condition("q2.tag", Const("ml"), "="),
        ),
    )
    return Projection(
        selected, ("q0.id", "q1.head"), names=("x", "y"), distinct=distinct
    )


def assert_same_rows(planned, naive, ordered=False):
    assert planned.columns == naive.columns
    if ordered:
        assert planned.rows == naive.rows
    else:
        assert sorted(map(str, planned.rows)) == sorted(map(str, naive.rows))


def test_planned_tree_matches_naive_exactly(db):
    expr = unfolder_shaped_tree(distinct=False)
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr)
    assert not isinstance(plan, OpaqueNode)
    assert_same_rows(
        plan.execute(db, planner.catalog), evaluate(expr, db)
    )


def test_planned_distinct_projection_under_set_semantics(db):
    expr = unfolder_shaped_tree(distinct=True)
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr, set_semantics=True)
    planned = plan.execute(db, planner.catalog)
    naive = evaluate(expr, db)
    assert planned.columns == naive.columns
    assert set(planned.rows) == set(naive.rows)


def test_join_conditions_become_hash_joins_not_cross_products(db):
    expr = unfolder_shaped_tree(distinct=True)
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr, set_semantics=True)
    joins = [node for node in plan.nodes() if isinstance(node, HashJoinNode)]
    assert joins, "expected hash joins in the plan"
    assert all(join.left_keys for join in joins), "no join should degrade to cross"


def test_equi_join_probes_shared_catalog_index(db):
    catalog = StatisticsCatalog(db)
    planner = Planner(catalog)
    expr = Selection(
        Join(Scan("emp"), Scan("dept"), on=()),
        (Condition("emp.dept", "dept.name", "="),),
    )
    plan = planner.plan(expr)
    joins = [n for n in plan.nodes() if isinstance(n, HashJoinNode)]
    assert any(j.index_table is not None for j in joins)
    result = plan.execute(db, catalog)
    assert_same_rows(result, evaluate(expr, db))
    # the probe populated the shared index; a second execution reuses it
    assert catalog._indexes
    plan.execute(db, catalog)


def test_index_bypassed_when_database_is_not_the_catalogs(db):
    catalog = StatisticsCatalog(db)
    planner = Planner(catalog)
    expr = Selection(
        Join(Scan("emp"), Scan("dept"), on=()),
        (Condition("emp.dept", "dept.name", "="),),
    )
    plan = planner.plan(expr)
    other = Database("shadow")
    other.create_table("emp", ["id", "dept"], [(9, "a")])
    other.create_table("dept", ["name", "head"], [("a", 9)])
    result = plan.execute(other, catalog)
    assert_same_rows(result, evaluate(expr, other))


def test_opaque_fallback_on_unknown_table(db):
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(Scan("no_such_table"))
    assert isinstance(plan, OpaqueNode)


def test_opaque_fallback_preserves_naive_errors(db):
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(Scan("no_such_table"))
    from repro.errors import MappingError

    with pytest.raises(MappingError):
        plan.execute(db, planner.catalog)


def test_semi_join_when_right_columns_unused(db):
    # DISTINCT over q0.id only: the skill factor exists purely to filter.
    join = Join(Rename(Scan("emp"), "q0"), Rename(Scan("skill"), "q1"), on=())
    expr = Projection(
        Selection(join, (Condition("q0.id", "q1.eid", "="),)),
        ("q0.id",),
        names=("x",),
        distinct=True,
    )
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr, set_semantics=True)
    joins = [n for n in plan.nodes() if isinstance(n, HashJoinNode)]
    assert any(j.semi for j in joins), "expected a semi-join"
    planned = plan.execute(db, planner.catalog)
    naive = evaluate(expr, db)
    assert set(planned.rows) == set(naive.rows)


def test_exact_mode_restores_naive_column_order(db):
    # join reordering starts from the smallest factor (skill), so without
    # the restore projection the output columns would come out permuted
    expr = Selection(
        Join(
            Join(Scan("emp"), Scan("dept"), on=()),
            Scan("skill"),
            on=(),
        ),
        (
            Condition("emp.dept", "dept.name", "="),
            Condition("emp.id", "skill.eid", "="),
        ),
    )
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr)
    assert_same_rows(plan.execute(db, planner.catalog), evaluate(expr, db))


def test_selection_pushdown_below_union(db):
    expr = Selection(
        algebra.UnionAll(
            (
                Projection(Scan("emp"), ("emp.id",), names=("v",)),
                Projection(Scan("skill"), ("skill.eid",), names=("v",)),
            )
        ),
        (Condition("v", Const(3), "="),),
    )
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(expr)
    assert_same_rows(plan.execute(db, planner.catalog), evaluate(expr, db))


def test_plan_render_and_to_dict_report_estimates(db):
    planner = Planner(StatisticsCatalog(db))
    plan = planner.plan(unfolder_shaped_tree())
    observed = {}
    plan.execute(db, planner.catalog, observed=observed)
    text = plan.render(observed)
    assert "est" in text and "actual" in text
    record = plan.to_dict(observed)
    assert record["op"] and "estimated_rows" in record
    assert "actual_rows" in record


def test_statistics_track_generation(db):
    catalog = StatisticsCatalog(db)
    before = catalog.statistics("emp")
    assert before.row_count == 4
    assert before.distinct("dept") == 3
    db.table("emp").insert((5, "d"))
    after = catalog.statistics("emp")
    assert after.row_count == 5
    assert after.distinct("dept") == 4


def test_join_key_string_normalizes():
    assert join_key((1, "a")) == ("1", "a")
    assert join_key(("1", "a")) == ("1", "a")


def test_join_keys_add_numeric_class_alongside_string_form():
    keys = join_keys((1, "a"))
    assert ("1", "a") in keys and (1, "a") in keys
    assert join_keys(("x",)) == [("x",)]  # strings: single key, no expansion
    # 1, 1.0 and True are == with different str() forms: one shared key
    assert set(join_keys((1,))) & set(join_keys((1.0,)))
    assert set(join_keys((True,))) & set(join_keys((1,)))
    # but "1" matches 1 (string form) and not 1.0, exactly like equal()
    assert set(join_keys(("1",))) & set(join_keys((1,)))
    assert not set(join_keys(("1",))) & set(join_keys((1.0,)))


def test_join_keys_agree_with_equal_on_mixed_pool():
    # The bucketing invariant JoinIndex relies on: two values share a
    # bucket key iff the evaluator's equal() accepts the pair.
    def equal(a, b):
        return a == b or str(a) == str(b)

    pool = [
        "1", "1.0", "a", "True", "nan", "inf", "2", "0",
        1, 1.0, 2, 2.5, -1, -1.0, 0, True, False,
        float("nan"), float("inf"), 10**20, 1e20,
    ]
    for a in pool:
        for b in pool:
            share = bool(set(join_keys((a,))) & set(join_keys((b,))))
            assert share == equal(a, b), (a, b)


def test_join_index_probe_dedups_and_keeps_build_order():
    index = JoinIndex()
    for row in [(1.0, "x"), ("1", "y"), (1, "z"), (2, "w")]:
        index.add([row[0]], row)
    # probe value 1 matches all three 1-ish rows exactly once each, in
    # build order, even though 1's two keys both hit the (1,)-row
    assert index.probe([1]) == [(1.0, "x"), ("1", "y"), (1, "z")]
    assert index.probe([True]) == [(1.0, "x"), (1, "z")]
    assert index.probe(["1"]) == [("1", "y"), (1, "z")]
    assert index.probe([3]) == []
    assert index.contains([2]) and not index.contains([3])


def test_shared_index_rebuilt_after_insert(db):
    catalog = StatisticsCatalog(db)
    index = catalog.index("emp", (1,))
    assert index.probe(["d"]) == []
    db.table("emp").insert((5, "d"))
    # a stale-generation entry must be *replaced*, not kept via setdefault
    assert catalog.index("emp", (1,)).probe(["d"]) == [(5, "d")]
    assert catalog.index("emp", (1,)).probe(["d"]) == [(5, "d")]


def test_mixed_type_joins_match_filter_semantics_naive_and_planned():
    # equal() is `a == b or str(a) == str(b)`; the hash paths must match
    # it bucket-for-bucket, including pairs equal under == only (1 vs
    # 1.0, True vs 1) and pairs equal by string form only (1 vs "1").
    database = Database("mixed")
    database.create_table("l", ["k"], [(1,), (2,), ("3",), (True,)])
    database.create_table("r", ["k"], [(1.0,), ("1",), (1,), (3,), (False,)])
    expr = Selection(
        Join(Scan("l"), Scan("r"), on=()),
        (Condition("l.k", "r.k", "="),),
    )
    expected = sorted(
        [
            ("1", "1.0"), ("1", "'1'"), ("1", "1"),
            ("'3'", "3"),
            ("True", "1.0"), ("True", "1"),
        ]
    )
    naive = evaluate(expr, database)
    assert sorted(tuple(map(repr, row)) for row in naive.rows) == expected
    planner = Planner(StatisticsCatalog(database))
    plan = planner.plan(expr)
    planned = plan.execute(database, planner.catalog)
    assert sorted(tuple(map(repr, row)) for row in planned.rows) == expected


def test_statistics_selectivity_bounds():
    stats = TableStatistics("t", 0, ())
    assert stats.selectivity("x") == 0.0


# ---------------------------------------------------------------------------
# the naive evaluator's hash join (the satellite fix in algebra.evaluate)


def test_naive_join_is_hash_partitioned_not_quadratic():
    database = Database("big")
    n = 1000
    database.create_table("l", ["k", "a"], [(i, f"a{i}") for i in range(n)])
    database.create_table("r", ["k", "b"], [(i, f"b{i}") for i in range(n)])
    expr = Selection(
        Join(Scan("l"), Scan("r"), on=()),
        (Condition("l.k", "r.k", "="),),
    )
    budget = CountingBudget()
    result = evaluate(expr, database, budget=budget)
    assert len(result.rows) == n
    # a cross product would tick ~n^2 = 1,000,000 times; the hash join
    # ticks per build row and per match — well under 50k in total
    assert budget.ticks < 50_000, f"join did {budget.ticks} ticks"


def test_naive_join_residual_and_side_filters():
    database = Database("mix")
    database.create_table("l", ["k", "a"], [(1, 10), (2, 20), (3, 5)])
    database.create_table("r", ["k", "b"], [(1, 1), (2, 30), (3, 7)])
    expr = Selection(
        Join(Scan("l"), Scan("r"), on=()),
        (
            Condition("l.k", "r.k", "="),
            Condition("l.a", "r.b", "!="),
            Condition("l.a", Const(5), "!="),
        ),
    )
    result = evaluate(expr, database)
    assert sorted(result.rows) == [(1, 10, 1, 1), (2, 20, 2, 30)]


def test_naive_join_on_pairs_still_work():
    database = Database("onpairs")
    database.create_table("l", ["k"], [(1,), (2,)])
    database.create_table("r", ["k"], [(2,), (3,)])
    result = evaluate(Join(Scan("l"), Scan("r"), on=(("l.k", "r.k"),)), database)
    assert result.rows == [((2,) + (2,))]


# ---------------------------------------------------------------------------
# end to end through OBDASystem


def make_system():
    tbox = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        Teacher isa exists teaches
        """,
        name="planner-e2e",
    )
    abox = ABox()
    for i in range(6):
        abox.add(ConceptAssertion(AtomicConcept("Professor"), Individual(f"p{i}")))
    for i in range(3):
        abox.add(
            RoleAssertion(
                AtomicRole("teaches"), Individual(f"p{i}"), Individual(f"c{i}")
            )
        )
    return tbox, abox


def test_system_planned_answers_match_naive_and_kb():
    from repro.obda.system import OBDASystem

    tbox, abox = make_system()
    planned = direct_mapping_system(tbox, abox)
    naive = direct_mapping_system(tbox, abox)
    naive.use_planner = False
    kb = OBDASystem(tbox, abox=abox)
    for text in (
        "q(x) :- Teacher(x)",
        "q(x, y) :- Teacher(x), teaches(x, y)",
        "q() :- teaches(x, y)",
    ):
        query = parse_query(text)
        a = planned.certain_answers(query, method="perfectref-sql")
        b = naive.certain_answers(query, method="perfectref-sql")
        c = kb.certain_answers(query, method="perfectref")
        assert a == b == c


def test_last_plan_report_is_populated():
    tbox, abox = make_system()
    system = direct_mapping_system(tbox, abox)
    assert system.last_plan_report() is None
    query = parse_query("q(x) :- Teacher(x)")
    system.certain_answers(query, method="perfectref-sql")
    report = system.last_plan_report()
    assert report is not None
    assert report["parts"] and report["text"]
    assert "constraint_pruning" in report
    assert system.cache_stats()["planner"]["planned_queries"] >= 1


def test_use_planner_false_keeps_naive_path():
    tbox, abox = make_system()
    system = direct_mapping_system(tbox, abox)
    system.use_planner = False
    query = parse_query("q(x) :- Teacher(x)")
    answers = system.certain_answers(query, method="perfectref-sql")
    assert system.last_plan_report() is None
    assert answers


def test_explain_carries_plan():
    from repro.obs.explain import explain_records, run_explain, render_explain

    tbox, _ = make_system()
    report = run_explain(tbox, query="q(x) :- Teacher(x)", seed=3)
    assert report.ok
    assert report.plan is not None
    rendered = render_explain(report)
    assert "plan (est/actual rows per operator" in rendered
    header = explain_records(report)[0]
    assert header["plan"] is not None


def test_planned_path_sees_inserts_through_shared_index():
    # The reviewer's reproduction: answer, insert, answer again — the
    # second planned execution must probe a rebuilt shared index, not a
    # stale pre-mutation one.
    tbox, abox = make_system()
    system = direct_mapping_system(tbox, abox)
    query = parse_query("q(x, y) :- Teacher(x), teaches(x, y)")
    first = system.certain_answers(query, method="perfectref-sql")
    assert first == {
        (Individual(f"p{i}"), Individual(f"c{i}")) for i in range(3)
    }
    system.database.table("t_Professor").insert(("p9",))
    system.database.table("t_teaches").insert(("p9", "c9"))
    second = system.certain_answers(query, method="perfectref-sql")
    assert second == first | {(Individual("p9"), Individual("c9"))}
    # and again, to pin that the rebuilt index was actually installed
    assert system.certain_answers(query, method="perfectref-sql") == second


def test_constraint_prune_revalidated_under_concurrent_insert(monkeypatch):
    # An insert between inclusion discovery and plan execution can
    # invalidate the inclusion that justified dropping a disjunct; the
    # planned path must notice the generation moved and replan.
    tbox = parse_tbox("Professor isa Teacher", name="prune-race")
    abox = ABox()
    for i in range(4):
        abox.add(ConceptAssertion(AtomicConcept("Professor"), Individual(f"p{i}")))
        abox.add(ConceptAssertion(AtomicConcept("Teacher"), Individual(f"p{i}")))
    abox.add(ConceptAssertion(AtomicConcept("Teacher"), Individual("t9")))
    system = direct_mapping_system(tbox, abox)
    original = PlannedQuery.execute
    fired = []

    def racing_execute(self, database, budget=None, observed=None):
        if not fired:  # first execution only: land an insert mid-query
            fired.append(True)
            system.database.table("t_Professor").insert(("p_new",))
        return original(self, database, budget=budget, observed=observed)

    monkeypatch.setattr(PlannedQuery, "execute", racing_execute)
    query = parse_query("q(x) :- Teacher(x)")
    answers = system.certain_answers(
        query, method="perfectref-sql", check_consistency=False
    )
    assert (Individual("p_new"),) in answers
    assert len(answers) == 6
    assert system.cache_stats()["planner"]["prune_retries"] >= 1


def test_constraint_pruning_drops_subsumed_disjunct():
    # Professor ⊑ Teacher and every professor is also asserted a teacher
    # in the data, so extent(t_Professor) ⊆ extent(t_Teacher) holds and
    # the Professor disjunct of the rewriting is extensionally redundant.
    tbox = parse_tbox("Professor isa Teacher", name="prune")
    abox = ABox()
    for i in range(4):
        abox.add(ConceptAssertion(AtomicConcept("Professor"), Individual(f"p{i}")))
        abox.add(ConceptAssertion(AtomicConcept("Teacher"), Individual(f"p{i}")))
    abox.add(ConceptAssertion(AtomicConcept("Teacher"), Individual("t9")))
    system = direct_mapping_system(tbox, abox)
    query = parse_query("q(x) :- Teacher(x)")
    answers = system.certain_answers(query, method="perfectref-sql")
    assert len(answers) == 5
    report = system.last_plan_report()
    pruning = report["constraint_pruning"]
    assert pruning["before"] == 2 and pruning["after"] == 1
    naive = direct_mapping_system(tbox, abox)
    naive.use_planner = False
    assert answers == naive.certain_answers(query, method="perfectref-sql")
