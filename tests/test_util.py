"""Unit tests for the timing utilities."""

import time

import pytest

from repro.errors import TimeoutExceeded
from repro.util import Stopwatch, format_millis


def test_stopwatch_elapsed_monotone():
    watch = Stopwatch()
    first = watch.elapsed_s
    second = watch.elapsed_s
    assert second >= first >= 0
    assert watch.elapsed_ms >= first * 1000


def test_stopwatch_restart():
    watch = Stopwatch()
    time.sleep(0.01)
    watch.restart()
    assert watch.elapsed_s < 0.01


def test_budget_check():
    watch = Stopwatch(budget_s=1000)
    watch.check_budget()  # well within budget
    tight = Stopwatch(budget_s=0.0)
    time.sleep(0.001)
    with pytest.raises(TimeoutExceeded) as info:
        tight.check_budget()
    assert info.value.budget_s == 0.0
    assert info.value.elapsed_s > 0


def test_no_budget_never_raises():
    watch = Stopwatch()
    watch.check_budget()


def test_format_millis_matches_figure1_style():
    assert format_millis(156.0) == "0.156"
    assert format_millis(4600.0) == "4.600"
    assert format_millis(None) == "timeout"
