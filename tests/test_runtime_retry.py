"""Unit tests for repro.runtime.retry (policy, wrappers, determinism)."""

import time

import pytest

from repro.errors import (
    PermanentSourceError,
    TimeoutExceeded,
    TransientSourceError,
)
from repro.obda.evaluation import ExtentProvider
from repro.obda.sql.database import Database
from repro.runtime import Budget, RetryingDatabase, RetryingExtents, RetryPolicy


def recording_policy(**kwargs):
    """A policy whose sleeps are recorded instead of waited out."""
    slept = []
    policy = RetryPolicy(sleep=slept.append, **kwargs)
    return policy, slept


class FlakyFn:
    """Fails with the given errors in order, then returns ``value``."""

    def __init__(self, errors, value="ok"):
        self.errors = list(errors)
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.value


# -- the policy itself ---------------------------------------------------------


def test_delays_grow_exponentially_and_cap_without_jitter():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0)
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.4)
    assert policy.delay_s(4) == pytest.approx(0.5)  # capped
    assert policy.delay_s(9) == pytest.approx(0.5)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=42)
    first = policy.delay_s(1, task="extent:Person")
    again = policy.delay_s(1, task="extent:Person")
    assert first == again  # same (seed, task, attempt) -> same delay
    assert 0.05 <= first <= 0.1  # raw * (1 - jitter) <= delay <= raw
    other_task = policy.delay_s(1, task="extent:Course")
    other_seed = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=43).delay_s(
        1, task="extent:Person"
    )
    assert first != other_task
    assert first != other_seed


def test_recovers_after_transient_failures_and_sleeps_the_schedule():
    policy, slept = recording_policy(max_attempts=4, base_delay_s=0.01, jitter=0.0)
    fn = FlakyFn([TransientSourceError("blip"), TransientSourceError("blip")])
    assert policy.call(fn, task="extent:Person") == "ok"
    assert fn.calls == 3
    assert slept == [pytest.approx(0.01), pytest.approx(0.02)]


def test_non_retryable_errors_propagate_immediately():
    policy, slept = recording_policy(max_attempts=5)
    fn = FlakyFn([ValueError("a bug, not an outage")])
    with pytest.raises(ValueError):
        policy.call(fn, task="extent:Person")
    assert fn.calls == 1
    assert slept == []


def test_exhaustion_raises_typed_permanent_error_with_cause():
    policy, _ = recording_policy(max_attempts=3, base_delay_s=0.0)
    fn = FlakyFn([TransientSourceError(f"blip {i}") for i in range(10)])
    with pytest.raises(PermanentSourceError) as info:
        policy.call(fn, task="extent:Person")
    assert fn.calls == 3  # the full attempt allowance, no more
    assert "extent:Person" in str(info.value)
    assert isinstance(info.value.__cause__, TransientSourceError)


def test_permanent_source_error_is_not_retried():
    policy, slept = recording_policy(max_attempts=5)
    fn = FlakyFn([PermanentSourceError("source is gone")])
    with pytest.raises(PermanentSourceError):
        policy.call(fn, task="t")
    assert fn.calls == 1
    assert slept == []


def test_budget_caps_the_backoff_delay():
    policy, slept = recording_policy(
        max_attempts=3, base_delay_s=10.0, jitter=0.0
    )
    budget = Budget(0.05, task="t")
    fn = FlakyFn([TransientSourceError("blip")])
    assert policy.call(fn, task="t", budget=budget) == "ok"
    assert len(slept) == 1
    assert slept[0] <= 0.05  # never sleep past the deadline


def test_exhausted_budget_raises_timeout_not_retry():
    policy, slept = recording_policy(max_attempts=5)
    budget = Budget(0.0, task="query q")
    time.sleep(0.001)
    fn = FlakyFn([])
    with pytest.raises(TimeoutExceeded) as info:
        policy.call(fn, task="t", budget=budget)
    assert info.value.task == "query q"
    assert fn.calls == 0  # checked before the attempt
    assert slept == []


# -- the wrappers --------------------------------------------------------------


class FlakyExtents(ExtentProvider):
    def __init__(self, fail_times):
        self.remaining_failures = fail_times
        self.calls = 0

    def extent(self, predicate, arity):
        self.calls += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransientSourceError(f"{predicate}: blip")
        return {("a",), ("b",)}


def test_retrying_extents_recovers():
    policy, _ = recording_policy(max_attempts=4, base_delay_s=0.0)
    inner = FlakyExtents(fail_times=2)
    provider = RetryingExtents(inner, policy)
    assert provider.extent("Person", 1) == {("a",), ("b",)}
    assert inner.calls == 3


def test_retrying_extents_exhaustion_is_typed():
    policy, _ = recording_policy(max_attempts=2, base_delay_s=0.0)
    provider = RetryingExtents(FlakyExtents(fail_times=99), policy)
    with pytest.raises(PermanentSourceError) as info:
        provider.extent("Person", 1)
    assert "extent:Person" in str(info.value)


class FlakyDatabase(Database):
    def __init__(self, fail_times):
        super().__init__(name="flaky")
        self.create_table("t", ["a"], [(1,)])
        self.remaining_failures = fail_times
        self.calls = 0

    def table(self, name):
        self.calls += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransientSourceError(f"{name}: connection reset")
        return super().table(name)


def test_retrying_database_recovers_and_shares_registry():
    policy, _ = recording_policy(max_attempts=4, base_delay_s=0.0)
    inner = FlakyDatabase(fail_times=2)
    db = RetryingDatabase(inner, policy)
    assert "t" in db  # registry shared with the inner database
    assert list(db.table("t").rows) == [(1,)]
    assert inner.calls == 3


def test_database_with_retry_convenience():
    policy, _ = recording_policy(max_attempts=3, base_delay_s=0.0)
    inner = FlakyDatabase(fail_times=1)
    db = inner.with_retry(policy)
    assert isinstance(db, RetryingDatabase)
    assert list(db.table("t").rows) == [(1,)]
