"""Unit tests for the finite-model semantics oracle."""

from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedConcept,
    QualifiedExistential,
    RoleInclusion,
    TBox,
    entails,
    find_countermodel,
    parse_axiom,
    parse_tbox,
)
from repro.dllite.semantics import Interpretation, is_satisfiable_concept

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
P = AtomicRole("P")


def test_interpretation_concept_extensions():
    interpretation = Interpretation(
        2,
        concepts={A: frozenset({0})},
        roles={P: frozenset({(0, 1)})},
    )
    assert interpretation.concept_ext(A) == {0}
    assert interpretation.concept_ext(ExistentialRole(P)) == {0}
    assert interpretation.concept_ext(ExistentialRole(InverseRole(P))) == {1}
    assert interpretation.concept_ext(NegatedConcept(A)) == {1}
    assert interpretation.concept_ext(QualifiedExistential(P, A)) == set()


def test_satisfies_inclusions():
    interpretation = Interpretation(
        2,
        concepts={A: frozenset({0}), B: frozenset({0, 1})},
        roles={P: frozenset({(0, 1)})},
    )
    assert interpretation.satisfies(ConceptInclusion(A, B))
    assert not interpretation.satisfies(ConceptInclusion(B, A))
    assert interpretation.satisfies(ConceptInclusion(ExistentialRole(P), A))


def test_entails_transitivity():
    tbox = parse_tbox("A isa B\nB isa C")
    assert entails(tbox, parse_axiom("A isa C"))
    assert not entails(tbox, parse_axiom("C isa A"))


def test_entails_role_chain_to_existential():
    tbox = parse_tbox("A isa exists P\nP isa R")
    assert entails(tbox, parse_axiom("A isa exists R"))
    assert not entails(tbox, parse_axiom("A isa exists R^-"))


def test_countermodel_is_a_real_countermodel():
    tbox = parse_tbox("A isa B")
    axiom = parse_axiom("B isa A")
    model = find_countermodel(tbox, axiom)
    assert model is not None
    assert model.is_model_of(tbox)
    assert not model.satisfies(axiom)


def test_unsatisfiable_concept_detected():
    tbox = parse_tbox("A isa B\nA isa not B")
    assert not is_satisfiable_concept(tbox, A)
    assert is_satisfiable_concept(tbox, B)


def test_negative_inclusion_entailment():
    tbox = parse_tbox("A isa B\nB isa not C")
    assert entails(tbox, parse_axiom("A isa not C"))
    assert entails(tbox, parse_axiom("C isa not A"))
    assert not entails(tbox, parse_axiom("A isa not B"))


def test_functionality_semantics():
    tbox = parse_tbox("funct P")
    interpretation = Interpretation(
        2, concepts={}, roles={P: frozenset({(0, 0), (0, 1)})}
    )
    axiom = next(iter(tbox))
    assert not interpretation.satisfies(axiom)
    ok = Interpretation(2, concepts={}, roles={P: frozenset({(0, 1)})})
    assert ok.satisfies(axiom)
