"""Unit tests for the textual DL-Lite parser and serializer."""

import pytest

from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeDomain,
    AttributeInclusion,
    ConceptInclusion,
    ExistentialRole,
    FunctionalAttribute,
    FunctionalRole,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
    RoleInclusion,
    parse_axiom,
    parse_concept,
    parse_role,
    parse_tbox,
    serialize_tbox,
)
from repro.errors import SyntaxError_

A, B = AtomicConcept("A"), AtomicConcept("B")
P = AtomicRole("P")


def test_parse_simple_concept_inclusion():
    assert parse_axiom("A isa B") == ConceptInclusion(A, B)


def test_parse_unicode_alternates():
    assert parse_axiom("A ⊑ ∃P") == ConceptInclusion(A, ExistentialRole(P))
    assert parse_axiom("A ⊑ ¬B") == ConceptInclusion(A, NegatedConcept(B))


def test_parse_qualified_existential_with_inverse():
    axiom = parse_axiom("State isa exists isPartOf^- . County")
    assert axiom == ConceptInclusion(
        AtomicConcept("State"),
        QualifiedExistential(
            InverseRole(AtomicRole("isPartOf")), AtomicConcept("County")
        ),
    )


def test_parse_role_inclusion_by_inverse_marker():
    axiom = parse_axiom("P^- isa R")
    assert axiom == RoleInclusion(InverseRole(P), AtomicRole("R"))
    negated = parse_axiom("P^- isa not R^-")
    assert negated == RoleInclusion(
        InverseRole(P), NegatedRole(InverseRole(AtomicRole("R")))
    )


def test_parse_attribute_domain():
    axiom = parse_axiom("domain(salary) isa Employee")
    assert axiom == ConceptInclusion(
        AttributeDomain(AtomicAttribute("salary")), AtomicConcept("Employee")
    )


def test_parse_funct():
    assert parse_axiom("funct P") == FunctionalRole(P)
    assert parse_axiom("funct P^-") == FunctionalRole(InverseRole(P))


def test_negation_rejected_on_lhs():
    with pytest.raises(SyntaxError_):
        parse_axiom("not A isa B")


def test_trailing_garbage_rejected():
    with pytest.raises(SyntaxError_):
        parse_axiom("A isa B C")
    with pytest.raises(SyntaxError_):
        parse_concept("exists P . A B")


def test_parse_concept_and_role_standalone():
    assert parse_concept("exists P^-") == ExistentialRole(InverseRole(P))
    assert parse_role("P^-") == InverseRole(P)
    assert parse_role("P") == P


def test_declarations_disambiguate_bare_names():
    tbox = parse_tbox(
        """
        role worksFor
        attribute name
        Employee isa Person        # concepts by default
        worksFor isa memberOf      # role by declaration
        name isa label             # attribute by declaration
        """
    )
    kinds = {type(axiom).__name__ for axiom in tbox}
    assert kinds == {"ConceptInclusion", "RoleInclusion", "AttributeInclusion"}


def test_late_usage_disambiguates_earlier_lines():
    # 'R' is only revealed to be a role by the second line; the two-pass
    # parse must still type the first line as a role inclusion.
    tbox = parse_tbox("P isa R\nR^- isa S")
    assert all(isinstance(axiom, RoleInclusion) for axiom in tbox)


def test_conflicting_kinds_rejected():
    with pytest.raises(SyntaxError_):
        parse_tbox("concept P\nA isa exists P")  # P declared concept, used as role


def test_comments_and_blank_lines_ignored():
    tbox = parse_tbox("\n# comment only\nA isa B  # trailing\n\n")
    assert len(tbox) == 1


def test_serialize_round_trip(county_tbox):
    text = serialize_tbox(county_tbox)
    reparsed = parse_tbox(text)
    assert set(reparsed.axioms) == set(county_tbox.axioms)
    assert reparsed.signature == county_tbox.signature


def test_serialize_round_trip_with_attributes(university_tbox):
    reparsed = parse_tbox(serialize_tbox(university_tbox))
    assert set(reparsed.axioms) == set(university_tbox.axioms)
    assert reparsed.signature == university_tbox.signature


def test_funct_attribute_via_declaration():
    tbox = parse_tbox("attribute salary\nfunct salary")
    assert FunctionalAttribute(AtomicAttribute("salary")) in tbox


def test_note_lines_annotate_next_axiom():
    tbox = parse_tbox(
        """
        role isPartOf
        note: Figure 2 idiom — counties sit inside states.
        County isa exists isPartOf . State
        Municipality isa County
        """
    )
    qualified = parse_axiom("County isa exists isPartOf . State")
    plain = parse_axiom("Municipality isa County")
    assert tbox.annotation(qualified) == "Figure 2 idiom — counties sit inside states."
    assert tbox.annotation(plain) is None


def test_notes_round_trip_through_serialization():
    tbox = parse_tbox("note: keep!\nA isa B\nB isa C")
    reparsed = parse_tbox(serialize_tbox(tbox))
    assert reparsed.annotation(parse_axiom("A isa B")) == "keep!"
    assert reparsed.annotation(parse_axiom("B isa C")) is None
