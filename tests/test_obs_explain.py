"""Tests for repro.obs.explain — the traced end-to-end query pipeline.

Includes the tracing-under-failure coverage: a budget exhaustion
mid-stage, a failing retry loop and an inconsistent ontology must all
leave a complete trace — every span closed with status ``error`` or
``timeout``, no dangling spans, and a JSON-lines export that still
validates.
"""

import json

import pytest

from repro.dllite import parse_tbox
from repro.errors import PermanentSourceError, TransientSourceError
from repro.obs.explain import (
    ExplainReport,
    explain_jsonlines,
    explain_records,
    render_explain,
    run_explain,
)
from repro.obs.schema import validate_trace_lines
from repro.obs.trace import NULL_TRACER, Tracer, current_tracer, use_tracer
from repro.runtime import RetryPolicy


@pytest.fixture
def university():
    return parse_tbox(
        """
        role teaches
        Professor isa Teacher
        Teacher isa Person
        Student isa Person
        Teacher isa exists teaches
        exists teaches^- isa Course
        """,
        name="university",
    )


PIPELINE_STAGES = ("certain-answers", "consistency", "classify", "rewrite",
                   "unfold", "sql-eval")


def test_explain_covers_the_whole_pipeline(university):
    report = run_explain(university, query="q(x) :- Teacher(x)")
    assert report.ok
    assert report.answers > 0
    names = [span.name for span in report.tracer.spans]
    for stage in PIPELINE_STAGES:
        assert stage in names, f"missing pipeline stage span {stage!r}"
    # Cache outcome attributes are on the spans (first run: everything misses).
    by_name = {span.name: span for span in report.tracer.spans}
    assert by_name["rewrite"].attributes["cache"] == "miss"
    assert by_name["unfold"].attributes["sql_parts"] >= 1
    assert by_name["sql-eval"].attributes["answers"] == report.answers
    assert not report.tracer.open_spans
    # The tracer was installed only for the run.
    assert current_tracer() is NULL_TRACER


def test_explain_export_is_valid_jsonlines(university):
    report = run_explain(university, query="q(x) :- Person(x)")
    text = explain_jsonlines(report)
    assert validate_trace_lines(text) == []
    header = json.loads(text.splitlines()[0])
    assert header["kind"] == "explain"
    assert header["ontology"] == "university"
    assert header["status"] == "ok"
    assert header["spans"] == len(report.tracer.spans)
    tail = json.loads(text.splitlines()[-1])
    assert tail["kind"] == "metrics"
    assert isinstance(tail["snapshot"], dict)


def test_explain_generates_a_query_when_none_given(university):
    report = run_explain(university, seed=11)
    assert report.query  # a seeded generated query was used
    again = run_explain(university, seed=11)
    assert again.query == report.query  # fully deterministic


def test_explain_surfaces_the_sqlite_backend(university):
    report = run_explain(
        university, query="q(x) :- Teacher(x)", method="perfectref-sqlite"
    )
    assert report.ok
    assert report.answers > 0
    assert report.backend is not None
    assert report.backend["backend"] == "sqlite"
    assert report.backend["parts"] >= 1
    assert "SELECT" in report.backend["sql"]
    names = [span.name for span in report.tracer.spans]
    assert "backend-exec" in names
    rendered = render_explain(report)
    assert "pushdown backend (sqlite)" in rendered
    header = json.loads(explain_jsonlines(report).splitlines()[0])
    assert header["backend"]["backend"] == "sqlite"
    assert validate_trace_lines(explain_jsonlines(report)) == []


def test_explain_timeout_closes_all_spans(university):
    report = run_explain(university, query="q(x) :- Teacher(x)", budget=0.0)
    assert report.status == "timeout"
    assert not report.ok
    assert not report.tracer.open_spans
    root = report.tracer.roots[0]
    assert root.status == "timeout"
    # The export of the failed run still validates.
    assert validate_trace_lines(explain_jsonlines(report)) == []


def test_explain_reports_pipeline_errors_without_raising():
    # The random ABox violates the disjointness, so the synthesized
    # sources are inconsistent and certain_answers raises internally.
    contradictory = parse_tbox(
        "Student isa Person\nTeacher isa Person\nStudent isa not Teacher",
        name="contradictory",
    )
    report = run_explain(contradictory, query="q(x) :- Person(x)")
    assert report.status == "error"
    assert "InconsistentOntology" in report.detail
    assert not report.tracer.open_spans
    assert validate_trace_lines(explain_jsonlines(report)) == []


def test_explain_fallback_records_chain_metadata(university):
    report = run_explain(university, query="q(x) :- Teacher(x)", fallback=True)
    assert report.ok
    assert report.engine.startswith("fallback:")
    assert report.fallback is not None
    assert report.fallback["attempts"]
    names = [span.name for span in report.tracer.spans]
    assert "fallback-chain" in names
    assert any(name.startswith("engine:") for name in names)


def test_render_explain_is_human_readable(university):
    report = run_explain(university, query="q(x) :- Teacher(x)")
    rendered = render_explain(report)
    assert "explain: q(x) :- Teacher(x)" in rendered
    assert "certain-answers" in rendered
    assert "sql-eval" in rendered
    assert "metrics snapshot:" in rendered
    assert "ms" in rendered


def test_exhausted_retries_leave_a_complete_trace():
    tracer = Tracer("retry-failure")

    def always_down():
        raise TransientSourceError("unreachable")

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
    with use_tracer(tracer):
        with pytest.raises(PermanentSourceError):
            policy.call(always_down, task="probe")
    attempts = [span for span in tracer.spans if span.name == "source-call"]
    assert len(attempts) == 3
    assert all(span.status == "error" for span in attempts)
    assert [span.attributes["attempt"] for span in attempts] == [1, 2, 3]
    assert not tracer.open_spans
    assert validate_trace_lines(tracer.to_jsonlines()) == []


def test_explain_records_shape():
    report = ExplainReport(
        query="q(x) :- A(x)", method="perfectref", ontology="t", seed=1
    )
    records = explain_records(report)
    assert records[0]["kind"] == "explain"
    assert records[-1]["kind"] == "metrics"
