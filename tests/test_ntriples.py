"""Unit tests for N-Triples ABox interchange."""

import pytest

from repro.dllite import (
    ABox,
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeAssertion,
    ConceptAssertion,
    Individual,
    RoleAssertion,
    parse_tbox,
)
from repro.dllite.ntriples import parse_ntriples, serialize_ntriples
from repro.errors import SyntaxError_

ada, logic = Individual("ada"), Individual("logic")


@pytest.fixture
def abox():
    return ABox(
        [
            ConceptAssertion(AtomicConcept("Professor"), ada),
            RoleAssertion(AtomicRole("teaches"), ada, logic),
            AttributeAssertion(AtomicAttribute("salary"), ada, 100),
            AttributeAssertion(AtomicAttribute("nickname"), ada, 'the "countess"'),
            AttributeAssertion(AtomicAttribute("rating"), ada, 4.5),
            AttributeAssertion(AtomicAttribute("tenured"), ada, True),
        ]
    )


def test_round_trip_preserves_assertions(abox):
    text = serialize_ntriples(abox)
    assert set(parse_ntriples(text)) == set(abox)


def test_serialization_shape(abox):
    text = serialize_ntriples(abox)
    assert (
        "<http://repro.example.org/data/ada> "
        "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
        "<http://repro.example.org/onto#Professor> ." in text
    )
    assert '"100"^^<http://www.w3.org/2001/XMLSchema#integer>' in text
    assert '"true"^^<http://www.w3.org/2001/XMLSchema#boolean>' in text
    assert '\\"countess\\"' in text


def test_custom_namespaces(abox):
    text = serialize_ntriples(
        abox, data_namespace="urn:d:", onto_namespace="urn:o:"
    )
    assert "<urn:d:ada>" in text and "<urn:o:teaches>" in text
    assert set(parse_ntriples(text)) == set(abox)


def test_comments_and_blanks_skipped():
    abox = parse_ntriples("\n# comment\n")
    assert len(abox) == 0


def test_bad_line_rejected():
    with pytest.raises(SyntaxError_):
        parse_ntriples("<a> <b> .")


def test_tbox_signature_disambiguates_iri_valued_attributes():
    # an attribute whose value happens to be serialized as an IRI upstream
    text = (
        "<http://d/ada> <http://o#homepage> <http://pages/ada> .\n"
    )
    tbox = parse_tbox("attribute homepage\nconcept Person")
    abox = parse_ntriples(text, tbox)
    assertion = next(iter(abox))
    assert isinstance(assertion, AttributeAssertion)
    without = parse_ntriples(text)
    assert isinstance(next(iter(without)), RoleAssertion)
