"""Unit tests for modularization and relevant-context extraction (§6)."""

import pytest

from repro.dllite import AtomicConcept, AtomicRole, parse_tbox
from repro.errors import UnknownPredicate
from repro.graphical import (
    focus_view,
    horizontal_modules,
    relevant_context,
    taxonomy_depths,
    vertical_views,
)

TWO_DOMAINS = """
role teaches, flies
Professor isa Teacher
Teacher isa exists teaches
exists teaches^- isa Course
Pilot isa exists flies
exists flies^- isa Aircraft
Aircraft isa Vehicle
"""


def test_horizontal_modules_split_domains():
    tbox = parse_tbox(TWO_DOMAINS)
    modules = horizontal_modules(tbox)
    assert len(modules) == 2
    names = [
        {c.name for c in module.signature.concepts} for module in modules
    ]
    assert {"Professor", "Teacher", "Course"} in names
    assert {"Pilot", "Aircraft", "Vehicle"} in names


def test_modules_preserve_all_axioms():
    tbox = parse_tbox(TWO_DOMAINS)
    modules = horizontal_modules(tbox)
    union = {axiom for module in modules for axiom in module}
    assert union == set(tbox.axioms)


def test_max_modules_merges_smallest():
    tbox = parse_tbox(
        "A1 isa B1\nA2 isa B2\nA3 isa B3\nA4 isa B4"
    )
    modules = horizontal_modules(tbox, max_modules=2)
    assert len(modules) == 2
    union = {axiom for module in modules for axiom in module}
    assert union == set(tbox.axioms)


def test_taxonomy_depths():
    depths = taxonomy_depths(parse_tbox("A isa B\nB isa C\nD isa C"))
    by_name = {concept.name: depth for concept, depth in depths.items()}
    assert by_name == {"C": 0, "B": 1, "D": 1, "A": 2}


def test_taxonomy_depths_handles_cycles():
    tbox = parse_tbox("A isa B\nB isa A")
    depths = taxonomy_depths(tbox)
    # terminates, covers both concepts, and is deterministic
    assert len(depths) == 2
    assert depths == taxonomy_depths(tbox)
    assert all(depth <= 2 for depth in depths.values())


def test_vertical_views_grow():
    tbox = parse_tbox("A isa B\nB isa C\nX isa C")
    views = vertical_views(tbox, levels=[0, 1, 2])
    sizes = [len(view.signature.concepts) for view in views]
    assert sizes == sorted(sizes)
    assert sizes[0] == 1  # only the root C
    assert sizes[-1] == 4
    # the most detailed view carries all concept axioms
    assert set(views[-1].axioms) == set(tbox.axioms)


def test_vertical_views_default_levels():
    tbox = parse_tbox("A isa B\nB isa C")
    views = vertical_views(tbox)
    assert len(views) >= 2


def test_relevant_context_distances(county_tbox):
    context = relevant_context(county_tbox, AtomicConcept("Municipality"), radius=1)
    names = {str(p): d for p, d in context.items()}
    assert names["Municipality"] == 0
    assert names["County"] == 1
    assert "State" not in names
    wide = relevant_context(county_tbox, AtomicConcept("Municipality"), radius=2)
    assert any(str(p) == "State" for p in wide)


def test_focus_view_projects_axioms(county_tbox):
    view = focus_view(county_tbox, AtomicConcept("County"), radius=1)
    assert all(
        "Municipality" in str(axiom)
        or "County" in str(axiom)
        for axiom in view
    ) or len(view) > 0
    assert len(view) <= len(county_tbox)


def test_focus_on_unknown_predicate():
    with pytest.raises(UnknownPredicate):
        relevant_context(parse_tbox("A isa B"), AtomicConcept("Zed"))
