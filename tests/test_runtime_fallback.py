"""Tests for repro.runtime.fallback — the resilient reasoner chain.

Includes the acceptance scenario of the resilience work: a
``FallbackChain([tableau, graph])`` under a budget that starves the
tableau engine must return the graph classifier's (complete) result and
record the fallback in the result metadata.
"""

import time
import warnings

import pytest

from repro.baselines import make_reasoner
from repro.corpus import load_profile
from repro.dllite import parse_tbox
from repro.errors import DegradedResult, PermanentSourceError, TimeoutExceeded
from repro.runtime import (
    Budget,
    FallbackChain,
    FaultInjector,
    FaultSpec,
    FaultyReasoner,
)


@pytest.fixture(scope="module")
def galen():
    # Large enough that the pairwise tableau cannot finish in 50 ms,
    # while the graph classifier finishes in ~15 ms.
    return load_profile("Galen", scale=0.4)


@pytest.fixture
def tiny_tbox():
    return parse_tbox("A isa B\nB isa C\nrole r\nexists r isa A")


def test_acceptance_starved_tableau_falls_back_to_graph(galen):
    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
    )
    with pytest.warns(DegradedResult):
        report = chain.classify_with_report(galen)
    # The graph classifier served a *complete* result ...
    assert report.served_by == "quonto-graph"
    assert report.complete is True
    assert report.degraded is True
    # ... identical to running it directly ...
    direct = make_reasoner("quonto-graph").classify_named(galen)
    assert report.classification.agrees_with(direct)
    # ... and the starved attempt is on record.
    assert [a.engine for a in report.attempts] == [
        "tableau-pairwise",
        "quonto-graph",
    ]
    assert report.attempts[0].outcome == "timeout"
    assert report.attempts[1].outcome == "ok"


def test_first_engine_success_is_not_degraded(tiny_tbox):
    chain = FallbackChain(
        [make_reasoner("quonto-graph"), make_reasoner("tableau-memoized")]
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DegradedResult)  # would fail the test
        report = chain.classify_with_report(tiny_tbox)
    assert report.served_by == "quonto-graph"
    assert report.degraded is False
    assert len(report.attempts) == 1


def test_all_engines_starved_raises_timeout(galen):
    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")]
    )
    watch = Budget(0.0, task="cell")
    time.sleep(0.001)
    # Never a silent partial result: when even the anchor cannot finish
    # within the caller's watch, the timeout propagates.
    with pytest.raises(TimeoutExceeded):
        chain.classify_with_report(galen, watch=watch)


def test_source_error_in_first_engine_falls_back(tiny_tbox):
    injector = FaultInjector(FaultSpec(permanent_after=0))
    flaky = FaultyReasoner(make_reasoner("tableau-memoized"), injector)
    chain = FallbackChain([flaky, make_reasoner("quonto-graph")], warn=False)
    report = chain.classify_with_report(tiny_tbox)
    assert report.served_by == "quonto-graph"
    assert report.attempts[0].outcome == "source error"
    # The same fault on the *final* engine propagates typed.
    anchor_down = FallbackChain(
        [FaultyReasoner(make_reasoner("quonto-graph"), FaultInjector(FaultSpec(permanent_after=0)))],
        warn=False,
    )
    with pytest.raises(PermanentSourceError):
        anchor_down.classify_with_report(tiny_tbox)


def test_warn_false_suppresses_the_degraded_warning(galen):
    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
        warn=False,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DegradedResult)
        report = chain.classify_with_report(galen)
    assert report.degraded is True


def test_chain_behaves_like_a_reasoner(tiny_tbox):
    chain = FallbackChain([make_reasoner("quonto-graph")])
    assert chain.name == "fallback(quonto-graph)"
    assert chain.complete is True  # as complete as its anchor
    named = chain.classify_named(tiny_tbox)
    assert chain.measure(tiny_tbox) == len(named)


def test_incomplete_anchor_marks_the_chain_incomplete(tiny_tbox):
    cb = make_reasoner("cb-consequence")
    assert cb.complete is False
    chain = FallbackChain([make_reasoner("quonto-graph"), cb])
    assert chain.complete is False
    # Serving *by* an incomplete engine is degraded even at level 0.
    with pytest.warns(DegradedResult):
        report = FallbackChain([cb]).classify_with_report(tiny_tbox)
    assert report.degraded is True
    assert report.complete is False


def test_empty_chain_is_rejected():
    with pytest.raises(ValueError):
        FallbackChain([])


def test_attempts_record_slice_budget_and_elapsed(galen):
    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
        warn=False,
    )
    report = chain.classify_with_report(galen)
    starved, served = report.attempts
    assert starved.budget_s == 0.05
    assert starved.elapsed_s > 0.0
    assert starved.detail  # the failure reason string is on record
    assert served.budget_s is None  # the anchor runs unbounded
    assert report.elapsed_s >= starved.elapsed_s
    reasons = report.failure_reasons()
    assert len(reasons) == 1
    assert "tableau-pairwise" in reasons[0] and "timeout" in reasons[0]
    assert "timeout" in starved.describe()


def test_chain_result_to_dict_is_json_serializable(galen):
    import json

    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
        warn=False,
    )
    data = chain.classify_with_report(galen).to_dict()
    assert data["served_by"] == "quonto-graph"
    assert data["degraded"] is True
    assert [a["outcome"] for a in data["attempts"]] == ["timeout", "ok"]
    json.dumps(data)  # must round-trip without a custom encoder


def test_degraded_warning_includes_failure_reasons(galen):
    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
    )
    with pytest.warns(DegradedResult, match="tableau-pairwise: timeout"):
        chain.classify_with_report(galen)


def test_chain_run_is_traced_with_slice_failures(galen):
    from repro.obs.trace import Tracer, use_tracer

    chain = FallbackChain(
        [make_reasoner("tableau-pairwise"), make_reasoner("quonto-graph")],
        per_engine_budget_s=0.05,
        warn=False,
    )
    tracer = Tracer("chain")
    with use_tracer(tracer):
        chain.classify_with_report(galen)
    names = [span.name for span in tracer.spans]
    assert names == [
        "fallback-chain",
        "engine:tableau-pairwise",
        "engine:quonto-graph",
    ]
    chain_span, starved, served = tracer.spans
    assert chain_span.status == "ok"
    assert chain_span.attributes["served_by"] == "quonto-graph"
    assert chain_span.attributes["degraded"] is True
    assert starved.status == "timeout"
    assert starved.attributes["slice_budget_s"] == 0.05
    assert served.status == "ok"
    assert served.attributes["final"] is True
    assert not tracer.open_spans


def test_registry_exposes_the_chain(tiny_tbox):
    chain = make_reasoner("fallback-chain")
    assert isinstance(chain, FallbackChain)
    assert chain.classify_named(tiny_tbox).agrees_with(
        make_reasoner("quonto-graph").classify_named(tiny_tbox)
    )
