"""TBox fingerprinting and classification memoization (repro.perf)."""

from __future__ import annotations

import pytest

from repro.dllite import parse_axiom, parse_tbox
from repro.dllite.abox import ABox, ConceptAssertion, Individual
from repro.dllite.syntax import AtomicConcept
from repro.obda import OBDASystem
from repro.perf import ClassificationCache, tbox_fingerprint

TBOX_TEXT = """
role teaches
Professor isa Teacher
Teacher isa Person
Teacher isa exists teaches
exists teaches^- isa Course
Student isa not Teacher
"""


def test_fingerprint_is_stable_across_calls():
    tbox = parse_tbox(TBOX_TEXT)
    assert tbox_fingerprint(tbox) == tbox_fingerprint(tbox)


def test_fingerprint_ignores_axiom_order():
    lines = [line for line in TBOX_TEXT.strip().splitlines()]
    shuffled = [lines[0]] + list(reversed(lines[1:]))
    assert tbox_fingerprint(parse_tbox(TBOX_TEXT)) == tbox_fingerprint(
        parse_tbox("\n".join(shuffled))
    )


def test_fingerprint_distinguishes_structural_change():
    base = parse_tbox(TBOX_TEXT)
    extended = parse_tbox(TBOX_TEXT + "\nCourse isa Offering\n")
    assert tbox_fingerprint(base) != tbox_fingerprint(extended)


def test_fingerprint_memo_invalidated_by_mutation():
    tbox = parse_tbox(TBOX_TEXT)
    before = tbox_fingerprint(tbox)
    tbox.add(parse_axiom("Course isa Offering"))
    after = tbox_fingerprint(tbox)
    assert before != after
    # declaring a genuinely new predicate is also structural
    tbox.declare(AtomicConcept("Workshop"))
    assert tbox_fingerprint(tbox) != after


def test_classification_cache_shares_across_equal_tboxes():
    cache = ClassificationCache()
    first = cache.classify(parse_tbox(TBOX_TEXT))
    second = cache.classify(parse_tbox(TBOX_TEXT))
    assert first is second
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def _system(tbox, cache):
    abox = ABox()
    abox.add(ConceptAssertion(AtomicConcept("Professor"), Individual("ada")))
    return OBDASystem(tbox, abox=abox, classification_cache=cache)


def test_systems_sharing_an_ontology_classify_once():
    cache = ClassificationCache()
    one = _system(parse_tbox(TBOX_TEXT), cache)
    two = _system(parse_tbox(TBOX_TEXT), cache)
    assert one.classification is two.classification
    assert len(cache) == 1


def test_tbox_mutation_invalidates_system_classification():
    cache = ClassificationCache()
    system = _system(parse_tbox(TBOX_TEXT), cache)
    before = system.classification
    assert before.subsumes(AtomicConcept("Person"), AtomicConcept("Teacher"))
    system.tbox.add(parse_axiom("Course isa Offering"))
    after = system.classification
    assert after is not before
    assert after.subsumes(AtomicConcept("Offering"), AtomicConcept("Course"))
