"""RL001 clean counterpart: the same logic, holding its locks."""

import threading

_LOCK_ORDER = ("self._lock", "other._lock")


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._cache = {}

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def guarded_store(self, key, value):
        with self._lock:
            self._cache[key] = value

    def swap_snapshot(self):
        with self._lock:
            self._cache = {}

    def snapshot(self):
        with self._lock:
            return dict(self._cache)

    def ratio(self):
        with self._lock:
            hits, misses = self.hits, self.misses
        return hits / (hits + misses) if hits + misses else 0.0


class Nested:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        with self._lock:
            self.total += 1

    def drain(self, other):
        with self._lock:
            with other._lock:  # ordered by the module-level _LOCK_ORDER
                self.total += other.total
