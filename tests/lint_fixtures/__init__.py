"""Planted-violation corpora for the ``repro.analysis`` self-tests.

Each ``rlXXX_violations.py`` module plants the exact protocol breaches
its rule pack must catch (every planted line is tagged ``# <- RLxxx``);
each ``rlXXX_clean.py`` module writes the same logic following the
protocol, and must lint clean.  These files are *data*, not code under
test — they are never imported by the runtime and are excluded from
style tooling.
"""
