"""RL004 planted violations: obs-convention breaches."""

import logging

from repro.obs.metrics import global_metrics
from repro.obs.tracing import current_tracer

logging.basicConfig(level=logging.DEBUG)  # <- RL004 import-time config
logging.getLogger("fixture").addHandler(  # <- RL004 import-time handler
    logging.StreamHandler()
)


def record_event():
    global_metrics().counter("hits").inc()  # <- RL004 one-segment name
    global_metrics().counter("Cache.Hits.Total").inc()  # <- RL004 case
    global_metrics().histogram("repro.query.elapsed_s").observe(0.1)


def leaky_span(payload):
    span = current_tracer().span("obda.query.answer")  # <- RL004 no `with`
    result = len(payload)
    span.end()
    return result


class PublicApi:
    def merge(self, extra, seen=[]):  # <- RL004 mutable default
        seen.extend(extra)
        return seen

    def collect(self, *, into={}):  # <- RL004 mutable kw-only default
        return into
