"""RL001 planted violations: every breach of the lock discipline."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._cache = {}

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def refresh(self):
        with self._lock:
            self._cache = {}  # published copy-on-write snapshot

    def unguarded_bump(self):
        self.hits += 1  # <- RL001 mutation outside the lock

    def unguarded_store(self, key, value):
        self._cache[key] = value  # <- RL001 subscript store outside the lock

    def corrupt_snapshot(self):
        self._cache.clear()  # <- RL001 in-place mutation of COW snapshot

    def torn_copy(self):
        return dict(self._cache)  # <- RL001 aggregate read outside the lock

    def torn_ratio(self):
        return self.hits / (self.hits + self.misses)  # <- RL001 torn read


class Nested:
    def __init__(self):
        self._lock = threading.Lock()
        self._inner = Counter()
        self.total = 0

    def bump(self):
        with self._lock:
            self.total += 1

    def drain(self, other):
        with self._lock:
            with other._lock:  # <- RL001 nested lock without _LOCK_ORDER
                self.total += other.total
