"""RL004 clean counterpart: conventions followed."""

import logging

from repro.obs.metrics import global_metrics
from repro.obs.tracing import current_tracer

logging.getLogger("fixture").addHandler(logging.NullHandler())


def record_event():
    global_metrics().counter("perf.cache.hits").inc()
    global_metrics().histogram("repro.query.elapsed_s").observe(0.1)


def scoped_span(payload):
    with current_tracer().span("obda.query.answer"):
        return len(payload)


class PublicApi:
    def merge(self, extra, seen=None):
        bucket = [] if seen is None else seen
        bucket.extend(extra)
        return bucket

    def collect(self, *, into=None):
        return {} if into is None else into

    def _internal(self, scratch=[]):
        """Private helpers are outside the public-API contract."""
        return scratch
