"""RL002 planted violations, including the PR-7 stale-shared-index bug.

The ``stale_setdefault_install`` method reconstructs the exact shape of
the historical bug: a generation-validated cache installed with
``setdefault``, which keeps serving a stale pre-mutation entry instead
of replacing it.
"""

import threading


class StatisticsCatalog:
    def __init__(self, provider):
        self._provider = provider
        self._lock = threading.Lock()
        self._index_cache = {}
        self._memo = {}

    def stale_setdefault_install(self, key):
        generation = self._provider.generation()
        state = self._index_cache.get(key)
        if state is not None and state[0] == generation:
            return state[1]
        index = self._build(key)
        return self._index_cache.setdefault(key, (generation, index))[1]  # <- RL002 stale setdefault (PR-7)

    def unbracketed_install(self, key):  # <- RL002 no revalidate, no stamp
        generation = self._provider.generation()
        rows = self._compute(key, generation)
        self._memo[key] = rows
        return rows

    def unstamped_key(self, cache, predicate, arity):
        generation = self._provider.generation()
        rows = self._scan(predicate, arity, generation)
        key = (predicate, arity)
        cache.put(key, rows)  # <- RL002 key omits the generation stamp
        return rows

    def _build(self, key):
        return {key: ()}

    def _compute(self, key, generation):
        return [(key, generation)]

    def _scan(self, predicate, arity, generation):
        return [(predicate, arity, generation)]
