"""RL003 planted violations: loops and calls that shed their budget."""


def unfold(query, mappings, budget=None):
    if budget is not None:
        budget.check()
    return [(query, m) for m in mappings]


def unbounded_worklist(seeds, budget=None):  # <- RL003 budget unused
    worklist = list(seeds)
    results = []
    while worklist:  # <- RL003 never consults the budget
        current = worklist.pop()
        results.append(current)
        worklist.extend(child for child in current.children if child not in results)
    return results


def ignores_budget(rows, budget=None):  # <- RL003 budget unused
    total = 0
    for row in rows:
        total += len(row)
    return total


def drops_budget_at_phase(query, mappings, budget=None):
    if budget is not None:
        budget.check()
    return unfold(query, mappings)  # <- RL003 phase call drops the budget
