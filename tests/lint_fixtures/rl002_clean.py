"""RL002 clean counterpart: bracketed, stamped, assignment-installed."""

import threading


class StatisticsCatalog:
    def __init__(self, provider):
        self._provider = provider
        self._lock = threading.Lock()
        self._index_cache = {}
        self._memo = {}

    def assignment_install(self, key):
        """The PR-7 fix: assignment replaces a stale-generation entry."""
        generation = self._provider.generation()
        state = self._index_cache.get(key)
        if state is not None and state[0] == generation:
            return state[1]
        index = self._build(key)
        self._index_cache[key] = (generation, index)
        return index

    def bracketed_install(self, key):
        generation = self._provider.generation()
        rows = self._compute(key, generation)
        if self._provider.generation() == generation:
            self._memo[key] = rows
        return rows

    def stamped_key(self, predicate, arity):
        generation = self._provider.generation()
        rows = self._scan(predicate, arity, generation)
        key = (predicate, arity, generation)
        self._memo[key] = rows
        return rows

    def guarded_setdefault(self, key):
        """Single-flight install: legal because the snapshot identity is
        checked — the published dict can never hold a stale entry."""
        generation = self._provider.generation()
        cache = self._index_cache
        index = self._build(key)
        if self._provider.generation() == generation:
            if self._index_cache is cache:
                cache.setdefault(key, (generation, index))
        return index

    def _build(self, key):
        return {key: ()}

    def _compute(self, key, generation):
        return [(key, generation)]

    def _scan(self, predicate, arity, generation):
        return [(predicate, arity, generation)]
