"""RL003 clean counterpart: polled, amortized, forwarded budgets."""


def unfold(query, mappings, budget=None):
    if budget is not None:
        budget.check()
    return [(query, m) for m in mappings]


def polled_worklist(seeds, budget=None):
    worklist = list(seeds)
    results = []
    while worklist:
        if budget is not None:
            budget.check()
        current = worklist.pop()
        results.append(current)
        worklist.extend(child for child in current.children if child not in results)
    return results


def amortized_outer_poll(sources, budget=None):
    closure = []
    for index, source in enumerate(sources):
        if budget is not None and index % 256 == 0:
            budget.check()
        frontier = [source]
        while frontier:  # covered by the enclosing loop's amortized poll
            node = frontier.pop()
            closure.append(node)
            frontier.extend(node.successors)
    return closure


def forwards_budget(query, mappings, budget=None):
    return unfold(query, mappings, budget=budget)


def no_budget_no_contract(rows):
    total = 0
    while rows:
        total += len(rows.pop())
    return total
