"""RL005 planted violations: SQL text escaping the sanctioned layer.

This file deliberately lives outside ``repro/obda/sql/`` — every
interpolation into SQL-keyword text here is a layer-confinement breach.
"""


def fetch_rows(connection, table_name):
    return connection.execute(
        f"SELECT s, o FROM {table_name}"  # <- RL005 outside the SQL layer
    ).fetchall()


def drop_table(connection, table_name):
    connection.execute(f"DROP TABLE {table_name}")  # <- RL005


def formatted_insert(connection, table_name, values):
    statement = "INSERT INTO {} VALUES (?)".format(table_name)  # <- RL005
    connection.execute(statement, values)


def percent_update(connection, table_name):
    statement = "UPDATE %s SET v = ?" % table_name  # <- RL005
    connection.execute(statement, (1,))
