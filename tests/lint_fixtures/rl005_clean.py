"""RL005 clean counterpart: no hand-rendered SQL outside the layer.

SQL-keyword strings without interpolation are fine anywhere; anything
parameterized goes through the SQL layer's renderer (exercised by the
in-layer provenance tests with synthetic ``obda/sql/`` path labels).
"""

_SCHEMA = "CREATE TABLE fixtures (s TEXT, o TEXT)"


def create_schema(connection):
    connection.execute(_SCHEMA)


def fetch_rows(connection):
    return connection.execute("SELECT s, o FROM fixtures").fetchall()


def parameterized_lookup(connection, subject):
    return connection.execute(
        "SELECT o FROM fixtures WHERE s = ?", (subject,)
    ).fetchall()
