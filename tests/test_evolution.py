"""Unit tests for TBox version diffing."""

from repro.dllite import AtomicConcept, parse_axiom, parse_tbox
from repro.evolution import diff_tboxes, render_diff

V1 = """
role teaches
Professor isa Teacher
Teacher isa Person
exists teaches isa Teacher
"""


def test_identical_versions():
    diff = diff_tboxes(parse_tbox(V1, name="v1"), parse_tbox(V1, name="v2"))
    assert diff.is_syntactically_identical
    assert diff.is_logically_equivalent
    assert diff.is_safe_extension


def test_pure_addition_is_safe():
    v2 = parse_tbox(V1 + "\nLecturer isa Teacher", name="v2")
    diff = diff_tboxes(parse_tbox(V1, name="v1"), v2)
    assert not diff.is_syntactically_identical
    assert diff.is_safe_extension
    assert parse_axiom("Lecturer isa Teacher") in diff.added_axioms
    assert AtomicConcept("Lecturer") in diff.added_predicates
    # the new consequence involves a new predicate, so the *shared-signature*
    # consequences are unchanged
    assert diff.is_logically_equivalent


def test_gained_consequence_over_shared_signature():
    v2 = parse_tbox(V1 + "\nTeacher isa Employee\nconcept Employee", name="v2")
    v1 = parse_tbox(V1 + "\nconcept Employee", name="v1")
    diff = diff_tboxes(v1, v2)
    assert parse_axiom("Professor isa Employee") in diff.gained_subsumptions
    assert diff.is_safe_extension
    assert not diff.is_logically_equivalent


def test_lost_consequence_is_breaking():
    v1 = parse_tbox(V1, name="v1")
    v2 = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        exists teaches isa Teacher
        """,
        name="v2",
    )
    v2.declare(AtomicConcept("Person"))
    diff = diff_tboxes(v1, v2)
    assert parse_axiom("Teacher isa Person") in diff.lost_subsumptions
    assert parse_axiom("Professor isa Person") in diff.lost_subsumptions
    assert not diff.is_safe_extension


def test_unsatisfiability_regression_detected():
    v1 = parse_tbox("Apprentice isa Student\nApprentice isa Employee", name="v1")
    v2 = parse_tbox(
        "Apprentice isa Student\nApprentice isa Employee\nStudent isa not Employee",
        name="v2",
    )
    diff = diff_tboxes(v1, v2)
    assert AtomicConcept("Apprentice") in diff.became_unsatisfiable
    assert not diff.is_safe_extension
    # and the repair is visible in the other direction
    back = diff_tboxes(v2, v1)
    assert AtomicConcept("Apprentice") in back.repaired_unsatisfiable


def test_render_diff_report():
    v1 = parse_tbox(V1, name="v1")
    v2 = parse_tbox(V1 + "\nTeacher isa Employee", name="v2")
    report = render_diff(diff_tboxes(v1, v2))
    assert report.startswith("# Changes: v1 → v2")
    assert "Axioms added" in report
    assert "Teacher ⊑ Employee" in report
    assert "Safe extension" in report or "logically equivalent" in report


def test_render_breaking_change_warning():
    v1 = parse_tbox("A isa B", name="v1")
    v2 = parse_tbox("concept A, B", name="v2")
    report = render_diff(diff_tboxes(v1, v2))
    assert "BREAKING" in report
