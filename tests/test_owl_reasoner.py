"""Unit tests for the ALCH tableau reasoner."""

import pytest

from repro.approximation import OwlOntology, OwlReasoner
from repro.approximation.owl import (
    All,
    And,
    BOTTOM,
    Not,
    Or,
    OwlClass,
    OwlSubClassOf,
    Some,
    TOP,
    nnf,
)

A, B, C, D = OwlClass("A"), OwlClass("B"), OwlClass("C"), OwlClass("D")


def reasoner(*axiom_pairs, subproperties=()):
    ontology = OwlOntology()
    for lhs, rhs in axiom_pairs:
        ontology.subclass(lhs, rhs)
    for sub, super_ in subproperties:
        ontology.subproperty(sub, super_)
    return OwlReasoner(ontology)


def test_nnf_pushes_negation():
    assert nnf(Not(And(A, B))) == Or(Not(A), Not(B))
    assert nnf(Not(Some("r", A))) == All("r", Not(A))
    assert nnf(Not(All("r", A))) == Some("r", Not(A))
    assert nnf(Not(Not(A))) == A
    assert nnf(Not(TOP)) == BOTTOM


def test_atomic_satisfiability():
    r = reasoner((A, B))
    assert r.is_satisfiable([A])
    assert not r.is_satisfiable([And(A, Not(B))])


def test_entails_transitivity():
    r = reasoner((A, B), (B, C))
    assert r.entails(OwlSubClassOf(A, C))
    assert not r.entails(OwlSubClassOf(C, A))


def test_disjunction_branching():
    r = reasoner((A, Or(B, C)), (B, D), (C, D))
    assert r.entails(OwlSubClassOf(A, D))


def test_disjunction_not_overcommitted():
    r = reasoner((A, Or(B, C)))
    assert not r.entails(OwlSubClassOf(A, B))
    assert not r.entails(OwlSubClassOf(A, C))


def test_existential_and_universal_interaction():
    r = reasoner((A, Some("r", B)), (TOP, All("r", C)))
    assert r.entails(OwlSubClassOf(A, Some("r", And(B, C))))


def test_universal_propagation_over_role_hierarchy():
    r = reasoner((A, Some("s", B)), subproperties=[("s", "r")])
    r.ontology.subclass(A, All("r", C))
    r2 = OwlReasoner(r.ontology)
    assert r2.entails(OwlSubClassOf(A, Some("s", C)))


def test_unsatisfiable_class_detected():
    r = reasoner((A, B), (A, Not(B)))
    assert not r.is_satisfiable([A])
    assert r.entails(OwlSubClassOf(A, BOTTOM))


def test_blocking_terminates_cycles():
    # A ⊑ ∃r.A — infinite chase without blocking
    r = reasoner((A, Some("r", A)))
    assert r.is_satisfiable([A])


def test_gci_with_complex_lhs():
    r = reasoner((Some("r", B), C), (A, Some("r", B)))
    assert r.entails(OwlSubClassOf(A, C))


def test_incoming_edge_seed_for_inverse_checks():
    # range-style reasoning: ⊤ ⊑ ∀r.B makes any r-successor a B
    r = reasoner((TOP, All("r", B)))
    assert not r.is_satisfiable([Not(B)], incoming=["r"])
    assert r.is_satisfiable([Not(B)])


def test_incoming_edge_with_subrole():
    r = reasoner((TOP, All("r", B)), subproperties=[("s", "r")])
    assert not r.is_satisfiable([Not(B)], incoming=["s"])


def test_domain_axiom_constrains_predecessor():
    # ∃r.⊤ ⊑ ⊥ means nothing can have an r-successor, so having an
    # incoming r edge is impossible too.
    r = reasoner((Some("r", TOP), BOTTOM))
    assert not r.is_satisfiable([], incoming=["r"])


def test_role_hierarchy_saturation():
    r = reasoner(subproperties=[("p", "q"), ("q", "s")])
    assert r.is_subrole("p", "s")
    assert r.is_subrole("p", "p")
    assert not r.is_subrole("s", "p")
