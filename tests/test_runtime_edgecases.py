"""Edge cases of the resilience layer the happy-path suites skip.

Covers zero/negative budget allowances, retry exhaustion *inside* a
fallback chain, and fault injection composed with budgets — the places
where two resilience mechanisms interact and the contract ("typed error
or degraded answer, never a bare exception, never a hang") is easiest
to break.
"""

from __future__ import annotations

import warnings

import pytest

from repro.baselines import make_reasoner
from repro.errors import (
    DegradedResult,
    PermanentSourceError,
    TimeoutExceeded,
    TransientSourceError,
)
from repro.runtime.budget import Budget, Deadline
from repro.runtime.fallback import FallbackChain
from repro.runtime.faults import FaultInjector, FaultSpec, FaultyReasoner
from repro.runtime.retry import RetryPolicy


class TestDegenerateBudgets:
    def test_zero_budget_raises_immediately(self):
        budget = Budget(0.0, task="zero")
        with pytest.raises(TimeoutExceeded) as info:
            budget.check()
        assert "zero" in str(info.value)

    def test_negative_budget_behaves_like_zero(self):
        budget = Budget(-1.0, task="negative")
        assert budget.expired()
        assert budget.remaining_s < 0
        with pytest.raises(TimeoutExceeded):
            budget.check()

    def test_zero_budget_scoped_child_also_raises(self):
        child = Budget(0.0, task="parent").scoped("child")
        with pytest.raises(TimeoutExceeded) as info:
            child.check()
        assert "child" in str(info.value)

    def test_expired_deadline(self):
        deadline = Deadline.after(-0.5)
        assert deadline.expired()
        assert deadline.remaining_s() < 0

    def test_tick_with_stride_one_is_check(self):
        budget = Budget(0.0, task="tick")
        with pytest.raises(TimeoutExceeded):
            budget.tick(stride=1)

    def test_classification_under_zero_budget(self, county_tbox):
        engine = make_reasoner("quonto-graph")
        with pytest.raises(TimeoutExceeded):
            engine.classify_named(county_tbox, watch=Budget(0.0, task="classify"))


class TestRetryEdgeCases:
    def test_single_attempt_policy_never_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            raise TransientSourceError("blip")

        policy = RetryPolicy(max_attempts=1, base_delay_s=0.0)
        with pytest.raises(PermanentSourceError):
            policy.call(flaky, task="one-shot")
        assert len(calls) == 1

    def test_exhaustion_preserves_the_cause(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)

        def always_down():
            raise TransientSourceError("still down")

        with pytest.raises(PermanentSourceError) as info:
            policy.call(always_down, task="exhaust")
        assert isinstance(info.value.__cause__, TransientSourceError)

    def test_zero_budget_wins_over_retries(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)

        def always_down():
            raise TransientSourceError("blip")

        with pytest.raises(TimeoutExceeded):
            policy.call(always_down, task="r", budget=Budget(0.0, task="outer"))

    def test_delays_never_sleep_past_the_deadline(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=3,
            base_delay_s=10.0,
            jitter=0.0,
            sleep=slept.append,
        )
        budget = Budget(0.05, task="cap")

        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise TransientSourceError("blip")
            return "ok"

        assert policy.call(flaky, task="capped", budget=budget) == "ok"
        assert slept and all(delay <= 0.05 for delay in slept)


class _AlwaysTransientReasoner:
    """A reasoner whose backing source never comes back up."""

    name = "always-transient"
    complete = True

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.inner = make_reasoner("quonto-graph")
        self.calls = 0

    def _touch_source(self):
        self.calls += 1
        raise TransientSourceError("source flapping")

    def classify_named(self, tbox, watch=None):
        # exhausts its retry policy, then surfaces PermanentSourceError
        self.policy.call(self._touch_source, task="flaky source", budget=watch)
        return self.inner.classify_named(tbox, watch=watch)


class TestRetryInsideFallbackChain:
    def test_retry_exhaustion_falls_through_to_the_anchor(self, county_tbox):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        flaky = _AlwaysTransientReasoner(policy)
        chain = FallbackChain([flaky, make_reasoner("quonto-graph")], warn=False)
        result = chain.classify_with_report(county_tbox)
        assert result.served_by == "quonto-graph"
        assert result.degraded
        assert flaky.calls == 3  # the whole retry allowance was consumed
        assert [a.outcome for a in result.attempts] == ["source error", "ok"]

    def test_exhaustion_on_the_anchor_propagates_typed(self, county_tbox):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        chain = FallbackChain([_AlwaysTransientReasoner(policy)], warn=False)
        with pytest.raises(PermanentSourceError):
            chain.classify_named(county_tbox)

    def test_degraded_result_warns(self, county_tbox):
        policy = RetryPolicy(max_attempts=1, base_delay_s=0.0)
        chain = FallbackChain(
            [_AlwaysTransientReasoner(policy), make_reasoner("quonto-graph")]
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            chain.classify_named(county_tbox)
        assert any(issubclass(w.category, DegradedResult) for w in caught)


class TestFaultsComposedWithBudgets:
    def test_permanently_down_engine_with_zero_budget_anchor(self, county_tbox):
        injector = FaultInjector(FaultSpec(permanent_after=0))
        down = FaultyReasoner(make_reasoner("saturation"), injector)
        chain = FallbackChain([down, make_reasoner("quonto-graph")], warn=False)
        # healthy path first: the chain absorbs the permanent outage
        assert chain.classify_with_report(county_tbox).served_by == "quonto-graph"
        # and with an exhausted caller watch, the anchor times out typed
        with pytest.raises(TimeoutExceeded):
            chain.classify_named(county_tbox, watch=Budget(0.0, task="outer"))

    def test_transient_faults_under_budget_stay_typed(self, county_tbox):
        injector = FaultInjector(FaultSpec(transient_rate=1.0, seed=3))
        flaky = FaultyReasoner(make_reasoner("saturation"), injector)
        chain = FallbackChain([flaky, make_reasoner("quonto-graph")], warn=False)
        result = chain.classify_with_report(
            county_tbox, watch=Budget(30.0, task="bounded")
        )
        assert result.served_by == "quonto-graph"
        assert result.attempts[0].outcome == "source error"
        assert injector.transients_injected == 1

    def test_injector_counters_are_deterministic(self):
        first = FaultInjector(FaultSpec(transient_rate=0.5, seed=9))
        second = FaultInjector(FaultSpec(transient_rate=0.5, seed=9))

        def drive(injector):
            outcomes = []
            for call in range(20):
                try:
                    injector.before_call(f"call:{call}")
                    outcomes.append("ok")
                except TransientSourceError:
                    outcomes.append("fault")
            return outcomes

        assert drive(first) == drive(second)
