"""Unit tests for EQL-Lite(UCQ) — epistemic queries beyond CQs."""

import pytest

from repro.dllite import (
    ABox,
    AtomicConcept,
    AtomicRole,
    ConceptAssertion,
    Individual,
    RoleAssertion,
    parse_tbox,
)
from repro.errors import ReproError
from repro.obda import (
    ABoxExtents,
    EqlAnd,
    EqlExists,
    EqlNot,
    EqlOr,
    EqlQuery,
    KAtom,
    OBDASystem,
    Variable,
    evaluate_eql,
    parse_cq,
    parse_query,
)

x, y = Variable("x"), Variable("y")
ada, bob, carol = Individual("ada"), Individual("bob"), Individual("carol")


@pytest.fixture
def setting():
    tbox = parse_tbox(
        """
        role attends
        GradStudent isa Student
        Student isa Person
        Lecturer isa Person
        """
    )
    abox = ABox(
        [
            ConceptAssertion(AtomicConcept("GradStudent"), ada),
            ConceptAssertion(AtomicConcept("Student"), bob),
            ConceptAssertion(AtomicConcept("Lecturer"), carol),
            RoleAssertion(AtomicRole("attends"), bob, Individual("logic")),
        ]
    )
    return tbox, ABoxExtents(abox)


def test_k_atom_uses_certain_answers(setting):
    tbox, extents = setting
    query = EqlQuery([x], KAtom(parse_query("q(x) :- Student(x)")))
    answers = evaluate_eql(query, tbox, extents)
    # ada is a Student by inference (GradStudent ⊑ Student)
    assert answers == {(ada,), (bob,)}


def test_conjunction_joins(setting):
    tbox, extents = setting
    query = EqlQuery(
        [x],
        EqlAnd(
            KAtom(parse_query("q(x) :- Student(x)")),
            KAtom(parse_query("q(x) :- attends(x, y)")),
        ),
    )
    assert evaluate_eql(query, tbox, extents) == {(bob,)}


def test_safe_negation(setting):
    tbox, extents = setting
    # students NOT KNOWN to attend anything — epistemic semantics
    query = EqlQuery(
        [x],
        EqlAnd(
            KAtom(parse_query("q(x) :- Student(x)")),
            EqlNot(KAtom(parse_query("q(x) :- attends(x, y)"))),
        ),
    )
    assert evaluate_eql(query, tbox, extents) == {(ada,)}


def test_unsafe_negation_rejected(setting):
    tbox, extents = setting
    bare = EqlQuery([x], EqlNot(KAtom(parse_query("q(x) :- Student(x)"))))
    with pytest.raises(ReproError):
        evaluate_eql(bare, tbox, extents)
    unbound = EqlQuery(
        [x],
        EqlAnd(
            KAtom(parse_query("q(x) :- Lecturer(x)")),
            EqlNot(KAtom(parse_query("q(y) :- Student(y)"))),
        ),
    )
    with pytest.raises(ReproError):
        evaluate_eql(unbound, tbox, extents)


def test_disjunction(setting):
    tbox, extents = setting
    query = EqlQuery(
        [x],
        EqlOr(
            KAtom(parse_query("q(x) :- Lecturer(x)")),
            KAtom(parse_query("q(x) :- GradStudent(x)")),
        ),
    )
    assert evaluate_eql(query, tbox, extents) == {(ada,), (carol,)}


def test_or_requires_matching_variables(setting):
    tbox, extents = setting
    with pytest.raises(ReproError):
        evaluate_eql(
            EqlQuery(
                [x],
                EqlOr(
                    KAtom(parse_query("q(x) :- Student(x)")),
                    KAtom(parse_query("q(x, y) :- attends(x, y)")),
                ),
            ),
            tbox,
            extents,
        )


def test_exists_projection(setting):
    tbox, extents = setting
    query = EqlQuery(
        [x],
        EqlExists([y], KAtom(parse_query("q(x, y) :- attends(x, y)"))),
    )
    assert evaluate_eql(query, tbox, extents) == {(bob,)}


def test_answer_vars_must_be_free(setting):
    with pytest.raises(Exception):
        EqlQuery([x, y], KAtom(parse_query("q(x) :- Student(x)")))


def test_obda_system_integration(setting):
    tbox, _ = setting
    abox = ABox(
        [
            ConceptAssertion(AtomicConcept("Student"), ada),
            ConceptAssertion(AtomicConcept("Student"), bob),
            RoleAssertion(AtomicRole("attends"), bob, Individual("logic")),
        ]
    )
    system = OBDASystem(tbox, abox=abox)
    query = EqlQuery(
        [x],
        EqlAnd(
            KAtom(parse_query("q(x) :- Student(x)")),
            EqlNot(KAtom(parse_query("q(x) :- attends(x, y)"))),
        ),
    )
    assert system.certain_answers_eql(query) == {(ada,)}
    with pytest.raises(ReproError):
        system.certain_answers_eql("not an eql query")


def test_k_atom_accepts_bare_cq(setting):
    tbox, extents = setting
    atom = KAtom(parse_cq("q(x) :- Person(x)"))
    answers = evaluate_eql(EqlQuery([x], atom), tbox, extents)
    assert answers == {(ada,), (bob,), (carol,)}


def test_epistemic_distinction_k_exists_vs_exists_k():
    """``NOT K(∃y P(x,y))`` vs ``NOT ∃y K(P(x,y))`` — the classic EQL
    separation: the TBox guarantees a successor (so the first is empty),
    but no concrete successor is known (so the second is not)."""
    tbox = parse_tbox(
        """
        role subscribes
        Customer isa exists subscribes
        """
    )
    abox = ABox([ConceptAssertion(AtomicConcept("Customer"), ada)])
    extents = ABoxExtents(abox)
    customer = KAtom(parse_query("q(x) :- Customer(x)"))
    some_unknown = EqlQuery(
        [x],
        EqlAnd(customer, EqlNot(KAtom(parse_query("q(x) :- subscribes(x, y)")))),
    )
    which_unknown = EqlQuery(
        [x],
        EqlAnd(
            customer,
            EqlNot(EqlExists([y], KAtom(parse_query("q(x, y) :- subscribes(x, y)")))),
        ),
    )
    assert evaluate_eql(some_unknown, tbox, extents) == set()
    assert evaluate_eql(which_unknown, tbox, extents) == {(ada,)}
