"""Unit tests for the command-line interface."""

import pytest

from repro.cli import load_ontology_file, main

ONTOLOGY_TEXT = """
role isPartOf
County isa exists isPartOf . State
Municipality isa County
County isa not State
"""


@pytest.fixture
def ontology_file(tmp_path):
    path = tmp_path / "geo.dllite"
    path.write_text(ONTOLOGY_TEXT)
    return str(path)


@pytest.fixture
def owl_file(tmp_path):
    from repro.dllite import parse_tbox, serialize_owl_functional

    path = tmp_path / "geo.ofn"
    path.write_text(serialize_owl_functional(parse_tbox(ONTOLOGY_TEXT)))
    return str(path)


def test_load_sniffs_both_formats(ontology_file, owl_file):
    textual = load_ontology_file(ontology_file)
    owl = load_ontology_file(owl_file)
    assert set(textual.axioms) == set(owl.axioms)


def test_classify_command(ontology_file, capsys):
    assert main(["classify", ontology_file, "--list"]) == 0
    output = capsys.readouterr().out
    assert "subsumptions (named, non-trivial): " in output
    assert "Municipality ⊑ County" in output
    assert "unsatisfiable: none" in output


def test_implication_command_exit_codes(ontology_file, capsys):
    assert main(["implication", ontology_file, "Municipality isa County"]) == 0
    assert main(["implication", ontology_file, "County isa Municipality"]) == 1
    output = capsys.readouterr().out
    assert "yes" in output and "no" in output


def test_rewrite_command_both_methods(ontology_file, capsys):
    assert main(["rewrite", ontology_file, "q(x) :- County(x)"]) == 0
    perfectref_output = capsys.readouterr().out
    assert "Municipality(x)" in perfectref_output
    assert (
        main(["rewrite", ontology_file, "q(x) :- County(x)", "--method", "presto"])
        == 0
    )
    presto_output = capsys.readouterr().out
    assert "County*" in presto_output


def test_render_command(ontology_file, tmp_path, capsys):
    out = tmp_path / "geo.svg"
    assert main(["render", ontology_file, "-o", str(out)]) == 0
    assert out.read_text().startswith("<svg")


def test_doc_command(ontology_file, tmp_path):
    out = tmp_path / "geo.md"
    assert main(["doc", ontology_file, "-o", str(out), "--title", "Geo"]) == 0
    text = out.read_text()
    assert text.startswith("# Geo")
    assert "### County" in text


def test_corpus_command(tmp_path, capsys):
    assert main(["corpus", "--list"]) == 0
    assert "Mouse" in capsys.readouterr().out
    out = tmp_path / "mouse.dllite"
    assert main(["corpus", "Mouse", "--scale", "0.05", "-o", str(out)]) == 0
    reloaded = load_ontology_file(str(out))
    assert len(reloaded) > 0
    assert main(["corpus"]) == 2  # neither name nor --list


def test_corpus_owl_format(tmp_path):
    out = tmp_path / "mouse.ofn"
    assert main(
        ["corpus", "Mouse", "--scale", "0.05", "--format", "owl", "-o", str(out)]
    ) == 0
    assert out.read_text().startswith("Prefix(")


def test_figure1_command(capsys):
    assert main(
        ["figure1", "--scale", "0.04", "--budget", "20", "--ontology", "Mouse"]
    ) == 0
    assert "QuOnto" in capsys.readouterr().out


def test_errors_reported_cleanly(tmp_path, capsys):
    bad = tmp_path / "bad.dllite"
    bad.write_text("A isa isa B")
    assert main(["classify", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["classify", str(tmp_path / "missing.dllite")]) == 2


def test_diff_command(tmp_path, capsys):
    old = tmp_path / "v1.dllite"
    new = tmp_path / "v2.dllite"
    old.write_text("A isa B\nB isa C")
    new.write_text("A isa B\nconcept C")  # C kept in the vocabulary, axiom dropped
    assert main(["diff", str(old), str(new)]) == 0
    assert "BREAKING" in capsys.readouterr().out
    assert main(["diff", str(old), str(new), "--check"]) == 1
    capsys.readouterr()
    assert main(["diff", str(old), str(old), "--check"]) == 0


@pytest.fixture
def consistent_ontology_file(tmp_path):
    # No disjointness: the synthesized random ABox stays consistent.
    path = tmp_path / "uni.dllite"
    path.write_text(
        "role teaches\n"
        "Professor isa Teacher\n"
        "Teacher isa exists teaches\n"
        "exists teaches^- isa Course\n"
    )
    return str(path)


def test_explain_command_prints_the_span_tree(consistent_ontology_file, capsys):
    code = main(
        ["explain", consistent_ontology_file, "-q", "q(x) :- Teacher(x)"]
    )
    assert code == 0
    output = capsys.readouterr().out
    for stage in ("certain-answers", "classify", "rewrite", "unfold", "sql-eval"):
        assert stage in output
    assert "metrics snapshot:" in output
    assert "ms" in output


def test_explain_command_json_export_validates(
    consistent_ontology_file, tmp_path, capsys
):
    from repro.obs.schema import validate_trace_lines

    out = tmp_path / "trace.jsonl"
    code = main(
        [
            "explain",
            consistent_ontology_file,
            "-q", "q(x) :- Teacher(x)",
            "--json", str(out),
            "--check",
        ]
    )
    assert code == 0
    assert validate_trace_lines(out.read_text()) == []


def test_explain_command_profile_and_missing_input(capsys):
    assert main(["explain"]) == 2
    assert "provide an ontology" in capsys.readouterr().err
    assert main(["explain", "--profile", "Mouse", "--scale", "0.05"]) == 0
    assert "explain:" in capsys.readouterr().out


def test_explain_command_reports_timeouts_nonzero(
    consistent_ontology_file, capsys
):
    code = main(
        [
            "explain",
            consistent_ontology_file,
            "-q", "q(x) :- Teacher(x)",
            "--budget", "0.0",
        ]
    )
    assert code == 1
    assert "timeout" in capsys.readouterr().out


def test_verbose_flag_configures_logging(consistent_ontology_file, capsys):
    import logging

    code = main(["-v", "explain", consistent_ontology_file, "-q", "q(x) :- Teacher(x)"])
    assert code == 0
    root = logging.getLogger("repro")
    try:
        assert root.level == logging.INFO
        assert any(
            isinstance(h, logging.StreamHandler) for h in root.handlers
        )
    finally:
        import repro.obs.logging as obs_logging

        if obs_logging._handler is not None:
            root.removeHandler(obs_logging._handler)
            obs_logging._handler = None
        root.setLevel(logging.NOTSET)


def test_lint_command(tmp_path, capsys):
    clean = tmp_path / "clean.dllite"
    clean.write_text("A isa B")
    assert main(["lint", str(clean)]) == 0
    assert "no issues" in capsys.readouterr().out
    broken = tmp_path / "broken.dllite"
    broken.write_text("Dead isa A\nDead isa B\nA isa not B\nconcept Unused")
    assert main(["lint", str(broken)]) == 1
    output = capsys.readouterr().out
    assert "unsatisfiable predicate: Dead" in output
    assert "declared but unused: Unused" in output
