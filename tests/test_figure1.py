"""Unit tests for the Figure 1 grid runner (tiny scale so it is fast)."""

import pytest

from repro.figure1 import Figure1Cell, format_table, main, run_cell, run_figure1


def test_run_cell_ok():
    cell = run_cell("Mouse", "QuOnto", "quonto-graph", budget_s=30.0, scale=0.05)
    assert cell.outcome == "ok"
    assert cell.millis is not None and cell.millis >= 0
    assert cell.subsumptions is not None and cell.subsumptions > 0
    assert cell.rendered not in ("timeout", "out of memory")


def test_run_cell_timeout():
    cell = run_cell("Galen", "Pellet", "tableau-pairwise", budget_s=0.0, scale=0.3)
    assert cell.outcome == "timeout"
    assert cell.rendered == "timeout"


def test_run_cell_out_of_memory():
    # a 5%-scale FMA 2.0 with an artificially tiny dense cap
    from repro.baselines.tableau import DenseMatrixTableauReasoner
    from repro.corpus import load_profile
    from repro.errors import TimeoutExceeded

    tbox = load_profile("FMA 2.0", scale=0.2)
    with pytest.raises(MemoryError):
        DenseMatrixTableauReasoner(memory_limit_cells=10).measure(tbox)


def test_run_figure1_mini_grid():
    cells = run_figure1(
        budget_s=30.0,
        scale=0.05,
        ontologies=["Mouse", "Transportation"],
        columns=[("QuOnto", "quonto-graph"), ("CB", "cb-consequence")],
    )
    assert len(cells) == 4
    assert all(cell.outcome == "ok" for cell in cells)
    # CB misses the property hierarchy, so it can never report more
    by_key = {(c.ontology, c.column): c for c in cells}
    for ontology in ("Mouse", "Transportation"):
        assert (
            by_key[(ontology, "CB")].subsumptions
            <= by_key[(ontology, "QuOnto")].subsumptions
        )


def test_format_table_layout():
    cells = [
        Figure1Cell("Mouse", "QuOnto", "quonto-graph", millis=156.0),
        Figure1Cell("Mouse", "Pellet", "tableau-pairwise", outcome="timeout"),
        Figure1Cell("Galen", "QuOnto", "quonto-graph", millis=4600.0),
        Figure1Cell("Galen", "Pellet", "tableau-pairwise", outcome="out of memory"),
    ]
    table = format_table(cells)
    lines = table.splitlines()
    assert lines[0].split() == ["Ontology", "QuOnto", "Pellet"]
    assert "0.156" in table and "4.600" in table
    assert "timeout" in table and "out of memory" in table
    assert "Figure 1" in table


def test_cli_main_smoke(capsys):
    exit_code = main(["--scale", "0.04", "--budget", "20", "--ontology", "Mouse"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Mouse" in output
    assert "QuOnto" in output
