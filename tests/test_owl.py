"""Unit tests for the ALCH language module."""

import pytest

from repro.approximation.owl import (
    All,
    And,
    BOTTOM,
    Bottom,
    Not,
    Or,
    OwlClass,
    OwlOntology,
    OwlSubClassOf,
    OwlSubPropertyOf,
    Some,
    TOP,
    Top,
    class_signature,
    nnf,
)

A, B, C = OwlClass("A"), OwlClass("B"), OwlClass("C")


def test_and_or_flatten():
    assert And(And(A, B), C).operands == (A, B, C)
    assert Or(A, Or(B, C)).operands == (A, B, C)


def test_expressions_are_hashable():
    assert len({And(A, B), And(A, B), Or(A, B)}) == 2
    assert Some("r", A) == Some("r", A)
    assert Some("r", A) != Some("s", A)


def test_ontology_sugar_normalizes():
    ontology = OwlOntology()
    ontology.equivalent(A, B)
    ontology.disjoint(A, C)
    ontology.domain("r", A)
    ontology.range("r", B)
    ontology.subproperty("r", "s")
    axioms = set(ontology.axioms)
    assert OwlSubClassOf(A, B) in axioms
    assert OwlSubClassOf(B, A) in axioms
    assert OwlSubClassOf(A, Not(C)) in axioms
    assert OwlSubClassOf(Some("r", TOP), A) in axioms
    assert OwlSubClassOf(TOP, All("r", B)) in axioms
    assert OwlSubPropertyOf("r", "s") in axioms


def test_ontology_deduplicates():
    ontology = OwlOntology()
    assert ontology.add(OwlSubClassOf(A, B)) is True
    assert ontology.add(OwlSubClassOf(A, B)) is False
    assert len(ontology) == 1


def test_signature_collection():
    ontology = OwlOntology()
    ontology.subclass(A, Some("r", And(B, All("s", C))))
    assert ontology.class_names() == {"A", "B", "C"}
    assert ontology.role_names() == {"r", "s"}
    assert class_signature(Not(And(A, Some("r", B)))) == {A, B}


def test_nnf_fixpoint():
    expression = Not(And(A, Or(Not(B), Some("r", Not(C)))))
    normal = nnf(expression)
    assert nnf(normal) == normal
    # no negation above non-atomic subexpressions
    def check(expr):
        if isinstance(expr, Not):
            assert isinstance(expr.operand, OwlClass)
        elif isinstance(expr, (And, Or)):
            for operand in expr.operands:
                check(operand)
        elif isinstance(expr, (Some, All)):
            check(expr.filler)

    check(normal)


def test_nnf_constants():
    assert nnf(Not(TOP)) == BOTTOM
    assert nnf(Not(BOTTOM)) == TOP


def test_add_rejects_raw_objects():
    with pytest.raises(TypeError):
        OwlOntology().add("A subclassof B")
