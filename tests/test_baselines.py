"""Unit tests for the baseline reasoners (Figure 1 comparators)."""

import random

import pytest

from repro.baselines import (
    FIGURE1_COLUMNS,
    ConsequenceBasedReasoner,
    DenseMatrixTableauReasoner,
    GraphReasoner,
    MemoizedTableauReasoner,
    NamedClassification,
    PairwiseTableauReasoner,
    REASONER_FACTORIES,
    SaturationReasoner,
    make_reasoner,
)
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    RoleInclusion,
    parse_tbox,
)
from repro.errors import TimeoutExceeded
from repro.util.timing import Stopwatch
from tests.conftest import make_random_tbox

COMPLETE_ENGINES = [
    "quonto-graph",
    "tableau-pairwise",
    "tableau-memoized",
    "tableau-dense",
    "saturation",
]


@pytest.mark.parametrize("engine", COMPLETE_ENGINES)
def test_simple_hierarchy(engine, county_tbox):
    result = make_reasoner(engine).classify_named(county_tbox)
    municipality, county = AtomicConcept("Municipality"), AtomicConcept("County")
    assert ConceptInclusion(municipality, county) in result.subsumptions
    assert RoleInclusion(
        AtomicRole("isPartOf"), AtomicRole("locatedIn")
    ) in result.subsumptions
    assert result.unsatisfiable == frozenset()


@pytest.mark.parametrize("seed", range(30))
def test_complete_engines_agree_on_random_tboxes(seed):
    tbox = make_random_tbox(random.Random(seed), n_concepts=4, n_roles=2, n_axioms=9)
    results = {
        engine: make_reasoner(engine).classify_named(tbox)
        for engine in COMPLETE_ENGINES
    }
    reference = results["quonto-graph"]
    for engine, result in results.items():
        assert result.agrees_with(reference), (
            engine,
            sorted(map(str, result.missing_from(reference))),
            sorted(map(str, reference.missing_from(result))),
        )


def test_cb_reports_concepts_but_not_property_hierarchy(county_tbox):
    """The paper's caveat: CB 'does not compute property hierarchy'."""
    cb = ConsequenceBasedReasoner().classify_named(county_tbox)
    reference = GraphReasoner().classify_named(county_tbox)
    assert ConceptInclusion(
        AtomicConcept("Municipality"), AtomicConcept("County")
    ) in cb.subsumptions
    role_axiom = RoleInclusion(AtomicRole("isPartOf"), AtomicRole("locatedIn"))
    assert role_axiom in reference.subsumptions
    assert role_axiom not in cb.subsumptions
    assert not ConsequenceBasedReasoner.complete


def test_cb_misses_unsat_driven_subsumptions():
    tbox = parse_tbox("Dead isa A\nDead isa B\nA isa not B\nconcept C")
    cb = ConsequenceBasedReasoner().classify_named(tbox)
    reference = GraphReasoner().classify_named(tbox)
    assert AtomicConcept("Dead") in reference.unsatisfiable
    assert cb.unsatisfiable == frozenset()
    assert reference.missing_from(cb)  # strictly less complete here


def test_dense_matrix_memory_cap():
    tbox = make_random_tbox(random.Random(1), n_concepts=30, n_roles=5, n_axioms=40)
    with pytest.raises(MemoryError):
        DenseMatrixTableauReasoner(memory_limit_cells=100).classify_named(tbox)


def test_memoized_memory_cap():
    tbox = make_random_tbox(random.Random(2), n_concepts=20, n_roles=3, n_axioms=40)
    with pytest.raises(MemoryError):
        MemoizedTableauReasoner(memory_limit_entries=3).classify_named(tbox)


def test_timeout_budget_respected():
    from repro.corpus import load_profile

    tbox = load_profile("Transportation")
    with pytest.raises(TimeoutExceeded):
        PairwiseTableauReasoner().classify_named(tbox, watch=Stopwatch(budget_s=0.0))


def test_registry_contents():
    assert set(dict(FIGURE1_COLUMNS)) == {"QuOnto", "FaCT++", "HermiT", "Pellet", "CB"}
    for _, engine in FIGURE1_COLUMNS:
        assert engine in REASONER_FACTORIES
    with pytest.raises(ValueError):
        make_reasoner("no-such-engine")


def test_named_classification_comparison_helpers():
    a = NamedClassification(frozenset(), frozenset())
    b = NamedClassification(
        frozenset({ConceptInclusion(AtomicConcept("A"), AtomicConcept("B"))}),
        frozenset(),
    )
    assert not a.agrees_with(b)
    assert b.missing_from(a) == set(b.subsumptions)
    assert len(b) == 1
