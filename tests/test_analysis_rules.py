"""Self-tests of the ``repro.analysis`` rule packs.

Each planted-violation fixture under ``tests/lint_fixtures/`` tags its
violations with ``# <- RLxxx`` markers; the pack must report exactly the
marked lines and nothing else, and the clean counterpart must report
nothing.  The in-layer RL005 provenance checks use synthetic
``obda/sql/`` path labels, since the rule is path-sensitive.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import analyze_source, rule_table
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"

_MARKER = re.compile(r"#\s*<-\s*(RL\d{3})")


def fixture_findings(name: str, rule: str):
    path = FIXTURES / name
    findings = analyze_source(path.as_posix(), path.read_text())
    return [f for f in findings if f.rule == rule]


def marker_lines(name: str, rule: str):
    lines = set()
    for number, text in enumerate((FIXTURES / name).read_text().splitlines(), 1):
        match = _MARKER.search(text)
        if match and match.group(1) == rule:
            lines.add(number)
    return lines


@pytest.mark.parametrize("rule", ["RL001", "RL002", "RL003", "RL004", "RL005"])
def test_pack_catches_exactly_the_planted_violations(rule):
    name = f"{rule.lower()}_violations.py"
    found = {f.line for f in fixture_findings(name, rule)}
    planted = marker_lines(name, rule)
    assert planted, f"fixture {name} has no markers"
    assert found == planted


@pytest.mark.parametrize("rule", ["RL001", "RL002", "RL003", "RL004", "RL005"])
def test_clean_counterpart_is_clean(rule):
    name = f"{rule.lower()}_clean.py"
    path = FIXTURES / name
    findings = analyze_source(path.as_posix(), path.read_text())
    assert findings == []


def test_rl002_reconstructs_the_pr7_stale_index_bug():
    findings = fixture_findings("rl002_violations.py", "RL002")
    stale = [f for f in findings if "setdefault" in f.message]
    assert stale, "the PR-7 setdefault reconstruction was not caught"
    assert "stale" in stale[0].message


# -- RL005 in-layer provenance (path-sensitive, so synthetic labels) ----------

SQL_LAYER_LABEL = "src/repro/obda/sql/render_fixture.py"


def test_rl005_in_layer_helper_results_are_safe():
    source = (
        "def render(spec):\n"
        "    table = _identifier(spec)\n"
        "    columns = ', '.join(_column(c) for c in spec.columns)\n"
        '    return f"SELECT {columns} FROM {table}"\n'
    )
    assert analyze_source(SQL_LAYER_LABEL, source) == []


def test_rl005_in_layer_raw_attribute_is_flagged():
    source = (
        "def render(self, spec):\n"
        '    return f"SELECT * FROM {spec.table}"\n'
    )
    findings = analyze_source(SQL_LAYER_LABEL, source)
    assert [f.rule for f in findings] == ["RL005"]
    assert "quoting helper" in findings[0].message


def test_rl005_in_layer_raw_parameter_is_flagged():
    source = (
        "def render(table_name):\n"
        '    return f"DROP TABLE {table_name}"\n'
    )
    findings = analyze_source(SQL_LAYER_LABEL, source)
    assert [f.rule for f in findings] == ["RL005"]


def test_rl005_loop_variable_inherits_iterable_safety():
    source = (
        "def render(connection, rows):\n"
        "    for i in range(3):\n"
        '        connection.execute(f"CREATE INDEX i_{i} ON t (c{i})")\n'
        "    for row in rows:\n"
        '        connection.execute(f"INSERT INTO t VALUES ({row})")\n'
    )
    findings = analyze_source(SQL_LAYER_LABEL, source)
    assert [f.line for f in findings] == [5]  # range(3) safe, rows not


def test_rl005_logic_pretty_printer_is_not_sql():
    source = (
        "def show(bound, part):\n"
        '    return f"EXISTS {bound}. {part}"\n'
    )
    assert analyze_source("src/repro/obda/eql.py", source) == []


# -- output ergonomics and exit codes -----------------------------------------


def test_findings_render_clickable_locations():
    finding = fixture_findings("rl001_violations.py", "RL001")[0]
    rendered = finding.render()
    assert rendered.startswith(
        f"{finding.path}:{finding.line}:{finding.col}: {finding.rule} "
    )
    assert finding.path.endswith("lint_fixtures/rl001_violations.py")
    assert rendered.endswith(f"[{finding.rule_name}]")


def test_cli_exit_one_on_findings(tmp_path, capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "rl001_violations.py"),
            "--baseline",
            str(tmp_path / "empty.json"),
        ]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "finding(s)" in out


def test_cli_exit_zero_on_clean(tmp_path, capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "rl001_clean.py"),
            "--baseline",
            str(tmp_path / "empty.json"),
        ]
    )
    assert rc == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_exit_two_on_unknown_rule(capsys):
    rc = main(["lint", str(FIXTURES), "--rule", "RL999"])
    assert rc == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    rc = main(["lint", "does/not/exist.py", "--check"])
    assert rc == 2


def test_cli_rule_filter_limits_packs(tmp_path, capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "rl001_violations.py"),
            "--rule",
            "rl004",
            "--baseline",
            str(tmp_path / "empty.json"),
        ]
    )
    assert rc == 0  # no RL004 violations in the RL001 fixture
    assert "RL001" not in capsys.readouterr().out


def test_cli_json_report(tmp_path, capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "rl005_violations.py"),
            "--json",
            "--baseline",
            str(tmp_path / "empty.json"),
        ]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    assert all(f["rule"] == "RL005" for f in payload["new"])
    assert {"path", "line", "col", "message"} <= set(payload["new"][0])


def test_cli_rules_listing(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for row in rule_table():
        assert row["id"] in out
        assert row["name"] in out


def test_repo_sources_lint_clean_against_committed_baseline():
    """The CI gate: src/ must stay clean modulo the justified baseline."""
    rc = main(["lint", "src", "--check"])
    assert rc == 0
