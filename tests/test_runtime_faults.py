"""Tests for repro.runtime.faults — deterministic fault injection.

Includes the acceptance scenario of the resilience work: with seeded
transient faults at a 30% rate, ``OBDASystem.certain_answers`` under a
retry policy returns the same certain answers as the fault-free run;
with a permanent source fault it raises a typed
:class:`~repro.errors.PermanentSourceError` (no hang, no bare exception).
"""

import time

import pytest

from repro.dllite import AtomicConcept, AtomicRole, parse_tbox
from repro.errors import (
    PermanentSourceError,
    ReproError,
    TransientSourceError,
)
from repro.obda import (
    Database,
    MappingAssertion,
    MappingCollection,
    OBDASystem,
    TargetAtom,
)
from repro.obda.evaluation import ExtentProvider
from repro.obda.mapping import IriTemplate
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    FaultyDatabase,
    FaultyExtents,
    RetryingExtents,
    RetryPolicy,
)

TRANSIENT_RATE = 0.3
SEED = 7


def make_campus_db():
    db = Database("campus")
    db.create_table(
        "staff", ["id", "role"], [(1, "prof"), (2, "prof"), (3, "lecturer")]
    )
    db.create_table(
        "teaching", ["staff_id", "course"], [(1, "logic"), (2, "compilers")]
    )
    db.create_table("enrolled", ["sid"], [(10,), (11,)])
    return db


def make_university(database):
    tbox = parse_tbox(
        """
        role teaches
        Professor isa Teacher
        Teacher isa Person
        Student isa Person
        Teacher isa exists teaches
        exists teaches^- isa Course
        Student isa not Teacher
        funct teaches^-
        """
    )
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'prof'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'lecturer'",
                [TargetAtom(AtomicConcept("Teacher"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT staff_id, course FROM teaching",
                [
                    TargetAtom(
                        AtomicRole("teaches"),
                        (
                            IriTemplate("person/{staff_id}"),
                            IriTemplate("course/{course}"),
                        ),
                    )
                ],
            ),
            MappingAssertion(
                "SELECT sid FROM enrolled",
                [TargetAtom(AtomicConcept("Student"), (IriTemplate("person/{sid}"),))],
            ),
        ]
    )
    return OBDASystem(tbox, mappings=mappings, database=database)


# -- acceptance: recovery under seeded transient faults ------------------------


@pytest.mark.parametrize("method", ("perfectref", "perfectref-sql", "presto"))
def test_acceptance_transient_faults_recover_to_identical_answers(method):
    query = "q(x) :- Person(x)"
    baseline = make_university(make_campus_db()).certain_answers(
        query, method=method
    )
    injector = FaultInjector(
        FaultSpec(transient_rate=TRANSIENT_RATE, seed=SEED)
    )
    faulty = make_university(FaultyDatabase(make_campus_db(), injector))
    policy = RetryPolicy(max_attempts=8, base_delay_s=0.0, seed=SEED)
    answers = faulty.certain_answers(query, method=method, retry=policy)
    assert answers == baseline
    assert injector.transients_injected > 0  # faults really happened


def test_acceptance_permanent_outage_raises_typed_error():
    injector = FaultInjector(FaultSpec(permanent_after=0))
    system = make_university(FaultyDatabase(make_campus_db(), injector))
    policy = RetryPolicy(max_attempts=8, base_delay_s=0.0, seed=SEED)
    started = time.monotonic()
    with pytest.raises(PermanentSourceError) as info:
        system.certain_answers("q(x) :- Person(x)", retry=policy)
    assert time.monotonic() - started < 5.0  # no hang
    assert isinstance(info.value, ReproError)  # typed, never bare


# -- the injector itself -------------------------------------------------------


def run_lottery(spec, calls=200):
    injector = FaultInjector(spec)
    outcomes = []
    for i in range(calls):
        try:
            injector.before_call(f"call:{i}")
            outcomes.append("ok")
        except TransientSourceError:
            outcomes.append("transient")
        except PermanentSourceError:
            outcomes.append("permanent")
    return injector, outcomes


def test_injector_is_deterministic():
    spec = FaultSpec(transient_rate=0.3, seed=SEED)
    first, outcomes_a = run_lottery(spec)
    second, outcomes_b = run_lottery(spec)
    assert outcomes_a == outcomes_b
    assert first.transients_injected == second.transients_injected
    assert "transient" in outcomes_a and "ok" in outcomes_a
    # A different seed produces a different fault sequence.
    _, outcomes_c = run_lottery(FaultSpec(transient_rate=0.3, seed=SEED + 1))
    assert outcomes_a != outcomes_c
    # The rate is roughly respected (loose bound; it is a seeded stream).
    rate = outcomes_a.count("transient") / len(outcomes_a)
    assert 0.15 < rate < 0.45


def test_permanent_after_threshold():
    injector, outcomes = run_lottery(FaultSpec(permanent_after=2), calls=5)
    assert outcomes == ["ok", "ok", "permanent", "permanent", "permanent"]
    assert injector.calls == 2  # admitted calls only


def test_slow_faults_add_latency():
    injector = FaultInjector(FaultSpec(slow_rate=1.0, slow_call_s=0.01))
    started = time.monotonic()
    injector.before_call("t")
    assert time.monotonic() - started >= 0.01
    assert injector.slow_calls_injected == 1


class StaticExtents(ExtentProvider):
    def __init__(self, rows):
        self.rows = rows

    def extent(self, predicate, arity):
        return set(self.rows)


def test_faulty_extents_under_retry_recover():
    inner = StaticExtents({("a",), ("b",)})
    injector = FaultInjector(FaultSpec(transient_rate=0.5, seed=3))
    provider = RetryingExtents(
        FaultyExtents(inner, injector),
        RetryPolicy(max_attempts=10, base_delay_s=0.0),
    )
    for i in range(20):
        assert provider.extent(f"P{i}", 1) == {("a",), ("b",)}
    assert injector.transients_injected > 0
