"""Functional regressions for the bugs the first ``repro lint`` run found.

The analyzer surfaced real torn-read and dropped-budget defects in the
observability, cache, TBox, and planner layers; these tests pin the
fixed behaviour so the lint rules and the runtime semantics stay in
agreement.
"""

import pytest

from repro.dllite import parse_tbox
from repro.errors import TimeoutExceeded
from repro.obda.sql.database import Database
from repro.obda.sql.planner import TableScanNode
from repro.obda.sql.stats import TableStatistics
from repro.obs.metrics import Histogram
from repro.perf.cache import CacheStats


class ExpiredBudget:
    def check(self):
        raise TimeoutExceeded(0.0, 0.0, task="scan-regression")

    def tick(self, stride=None):
        self.check()


def test_cache_stats_lookups_and_hit_rate():
    stats = CacheStats(name="probe")
    assert stats.lookups == 0
    assert stats.hit_rate == 0.0
    stats.record_hit(3)
    stats.record_miss()
    assert stats.lookups == 4
    assert stats.hit_rate == pytest.approx(0.75)


def test_histogram_mean_is_locked_and_correct():
    histogram = Histogram("probe.latency.ms")
    assert histogram.mean == 0.0
    for value in (2.0, 4.0, 12.0):
        histogram.observe(value)
    assert histogram.mean == pytest.approx(6.0)
    snapshot = histogram.to_dict()
    assert snapshot["min"] <= histogram.mean <= snapshot["max"]


def test_tbox_axioms_snapshot_and_stats():
    tbox = parse_tbox(
        "Employee isa Person\nManager isa Employee", name="regress"
    )
    axioms = tbox.axioms
    assert isinstance(axioms, tuple) and len(axioms) == 2
    stats = tbox.stats()
    assert stats["concepts"] == 3
    assert stats["axioms"] == 2


def test_table_scan_polls_budget_before_materializing():
    database = Database("budget-test")
    database.create_table("emp", ["id"], [(1,), (2,)])
    statistics = TableStatistics("emp", 2, ())
    node = TableScanNode("emp", "emp", ("emp.id",), 2.0, statistics)
    result = node._execute(database, None, None, None)
    assert len(result.rows) == 2
    with pytest.raises(TimeoutExceeded):
        node._execute(database, None, ExpiredBudget(), None)
