"""Cross-query extent caching, indexed joins, and cache non-poisoning."""

from __future__ import annotations

import pytest

from repro.dllite import parse_tbox
from repro.dllite.abox import ABox, Individual, RoleAssertion
from repro.dllite.syntax import AtomicRole
from repro.errors import TimeoutExceeded
from repro.obda.evaluation import ABoxExtents
from repro.perf import ClassificationCache
from repro.runtime.budget import Budget
from repro.runtime.fallback import FallbackChain
from repro.testkit.generators import direct_mapping_system

TBOX_TEXT = """
role teaches
Professor isa Teacher
Teacher isa Person
Teacher isa exists teaches
exists teaches isa Teacher
exists teaches^- isa Course
"""


def _campus_system():
    from repro.dllite.abox import ConceptAssertion
    from repro.dllite.syntax import AtomicConcept

    tbox = parse_tbox(TBOX_TEXT)
    abox = ABox()
    for name in ("ada", "bob"):
        abox.add(ConceptAssertion(AtomicConcept("Professor"), Individual(name)))
    abox.add(
        RoleAssertion(AtomicRole("teaches"), Individual("ada"), Individual("logic"))
    )
    return direct_mapping_system(tbox, abox)


def test_workload_pulls_each_predicate_extent_once():
    """S1 regression: two queries, one source pull per predicate."""
    system = _campus_system()
    pulled = []
    original = system.mappings.predicate_extent

    def counting(database, predicate):
        pulled.append(predicate)
        return original(database, predicate)

    system.mappings.predicate_extent = counting
    first = system.certain_answers(
        "q(x) :- Teacher(x)", check_consistency=False
    )
    second = system.certain_answers(
        "q(x) :- Teacher(x), teaches(x, y)", check_consistency=False
    )
    assert first and second
    assert len(pulled) == len(set(pulled)), (
        f"duplicate source pulls across the workload: {sorted(pulled)}"
    )
    assert system.cache_stats()["extents"]["source_pulls"] == len(pulled)


def test_database_mutation_invalidates_extents_and_answers():
    system = _campus_system()
    query = "q(x) :- Teacher(x)"
    before = system.certain_answers(query, check_consistency=False)
    system.database["t_Professor"].insert(("eve",))
    after = system.certain_answers(query, check_consistency=False)
    assert len(after) == len(before) + 1
    assert (Individual("eve"),) in after


def test_indexes_are_reused_across_queries():
    system = _campus_system()
    provider = system.extents()
    first = provider.index("teaches", 2, (0,))
    assert provider.index("teaches", 2, (0,)) is first
    # a different probe shape is a different index
    assert provider.index("teaches", 2, (1,)) is not first
    # data mutation rebuilds
    system.database["t_teaches"].insert(("bob", "compilers"))
    assert provider.index("teaches", 2, (0,)) is not first


def test_explicit_invalidate_drops_extents_and_indexes():
    system = _campus_system()
    provider = system.extents()
    provider.extent("Teacher", 1)
    index = provider.index("teaches", 2, ())
    provider.invalidate()
    assert provider._cache == {}
    assert provider.index("teaches", 2, ()) is not index


# -- non-poisoning -------------------------------------------------------------


def _big_abox_extents(rows: int = 1200) -> ABoxExtents:
    abox = ABox()
    role = AtomicRole("P")
    for i in range(rows):
        abox.add(RoleAssertion(role, Individual(f"a{i}"), Individual(f"b{i}")))
    return ABoxExtents(abox)


def test_budget_abort_during_index_build_installs_nothing():
    provider = _big_abox_extents()
    expired = Budget(0.0, task="index")
    with pytest.raises(TimeoutExceeded):
        provider.index("P", 2, (0,), budget=expired)
    assert ("P", (0,)) not in provider._index_cache
    # the next (funded) build succeeds and is complete
    index = provider.index("P", 2, (0,))
    assert sum(len(rows) for rows in index.values()) == 1200


def test_budget_abort_leaves_answer_cache_empty():
    system = _campus_system()
    query = "q(x) :- Teacher(x), teaches(x, y)"
    with pytest.raises(TimeoutExceeded):
        system.certain_answers(query, check_consistency=False, budget=Budget(0.0))
    assert len(system._answer_cache) == 0
    assert len(system._rewriting_cache) == 0
    answers = system.certain_answers(query, check_consistency=False)
    assert answers == {(Individual("ada"),), (Individual("bob"),)}


def test_fallback_timeout_does_not_poison_classification_cache():
    """S6: a timed-out engine slice leaves the shared cache untouched."""
    from repro.baselines import make_reasoner

    tbox = parse_tbox(TBOX_TEXT)
    cache = ClassificationCache()
    with pytest.raises(TimeoutExceeded):
        cache.classify(tbox, watch=Budget(0.0, task="slice"))
    assert len(cache) == 0

    # the chain itself recovers on a later engine; only the *completed*
    # classification may then enter the cache
    chain = FallbackChain(
        [make_reasoner("quonto-graph"), make_reasoner("quonto-graph")],
        per_engine_budget_s=30.0,
    )
    result = chain.classify_with_report(tbox)
    assert result.classification is not None
    completed = cache.classify(tbox)
    assert len(cache) == 1
    assert cache.classify(tbox) is completed
