"""Tests for repro.obs.metrics — instruments, snapshots, probes, integration."""

import pytest

from repro.dllite import parse_tbox
from repro.errors import PermanentSourceError, TimeoutExceeded, TransientSourceError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, global_metrics
from repro.perf.cache import LRUCache
from repro.runtime import Budget, FallbackChain, RetryPolicy
from repro.baselines import make_reasoner


@pytest.fixture(autouse=True)
def fresh_global_metrics():
    global_metrics().reset()
    yield
    global_metrics().reset()


def test_counter_gauge_histogram_basics():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge("g")
    gauge.set(1.5)
    assert gauge.value == 1.5
    histogram = Histogram("h")
    for sample in (1.0, 3.0, 2.0):
        histogram.observe(sample)
    assert histogram.count == 3
    assert histogram.min == 1.0 and histogram.max == 3.0
    assert histogram.mean == 2.0
    assert histogram.to_dict()["total"] == 6.0


def test_registry_creates_on_first_use_and_snapshots():
    registry = MetricsRegistry()
    registry.counter("a.b.c").inc()
    assert registry.counter("a.b.c").value == 1  # same instrument back
    registry.gauge("g").set("x")
    registry.histogram("h").observe(0.5)
    registry.counter("zero.counter")  # stays out of the snapshot
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a.b.c": 1}
    assert snapshot["gauges"] == {"g": "x"}
    assert snapshot["histograms"]["h"]["count"] == 1
    registry.reset()
    after = registry.snapshot()
    assert after["counters"] == {} and after["histograms"] == {}


def test_probes_are_polled_at_snapshot_time_and_errors_contained():
    registry = MetricsRegistry()
    registry.counter("seen").inc()
    registry.register_probe("state", lambda: {"value": 42})

    def broken():
        raise RuntimeError("probe down")

    registry.register_probe("broken", broken)
    snapshot = registry.snapshot()
    assert snapshot["state"] == {"value": 42}
    assert "RuntimeError" in snapshot["broken"]["probe_error"]


def test_global_registry_aggregates_live_cache_stats():
    cache = LRUCache(maxsize=4, name="metrics-probe-demo")
    cache.put("k", 1)
    cache.get("k")
    cache.get("absent")
    snapshot = global_metrics().snapshot()
    entry = snapshot["perf.caches"]["metrics-probe-demo"]
    assert entry["hits"] >= 1 and entry["misses"] >= 1
    assert entry["caches"] >= 1
    assert 0.0 <= entry["hit_rate"] <= 1.0


def test_retry_policy_reports_attempts_and_exhaustion():
    calls = []

    def flaky():
        calls.append(1)
        raise TransientSourceError("blip")

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
    with pytest.raises(PermanentSourceError):
        policy.call(flaky, task="probe")
    counters = global_metrics().snapshot()["counters"]
    assert counters["runtime.retry.attempts"] == 3
    assert counters["runtime.retry.transient_failures"] == 3
    assert counters["runtime.retry.exhausted"] == 1


def test_budget_expiry_is_counted():
    budget = Budget(0.0, task="instant")
    with pytest.raises(TimeoutExceeded):
        budget.check()
    counters = global_metrics().snapshot()["counters"]
    assert counters["runtime.budget.expired"] == 1


def test_fallback_chain_reports_runs_and_fallbacks():
    tbox = parse_tbox("A isa B\nB isa C")
    chain = FallbackChain([make_reasoner("quonto-graph")], warn=False)
    chain.classify_with_report(tbox)
    snapshot = global_metrics().snapshot()
    assert snapshot["counters"]["runtime.fallback.runs"] == 1
    assert "runtime.fallback.fallbacks" not in snapshot["counters"]
    assert snapshot["histograms"]["runtime.fallback.slice_elapsed_s"]["count"] == 1
