"""Unit tests for syntactic and semantic OWL → DL-Lite approximation."""

import pytest

from repro.approximation import (
    OwlOntology,
    completeness_report,
    random_owl_ontology,
    semantic_approximation,
    soundness_report,
    syntactic_approximation,
)
from repro.approximation.owl import All, And, Not, Or, OwlClass, Some, Top
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedConcept,
    QualifiedExistential,
    RoleInclusion,
    parse_axiom,
)

A, B, C = OwlClass("A"), OwlClass("B"), OwlClass("C")


def test_syntactic_keeps_ql_compliant_axioms():
    ontology = OwlOntology()
    ontology.subclass(A, B)
    ontology.subclass(A, Some("r", B))
    ontology.disjoint(A, C)
    ontology.subproperty("r", "s")
    tbox = syntactic_approximation(ontology)
    assert parse_axiom("A isa B") in tbox
    assert ConceptInclusion(
        AtomicConcept("A"), QualifiedExistential(AtomicRole("r"), AtomicConcept("B"))
    ) in tbox
    assert ConceptInclusion(AtomicConcept("A"), NegatedConcept(AtomicConcept("C"))) in tbox
    assert RoleInclusion(AtomicRole("r"), AtomicRole("s")) in tbox


def test_syntactic_splits_rhs_conjunction():
    ontology = OwlOntology()
    ontology.subclass(A, And(B, C))
    tbox = syntactic_approximation(ontology)
    assert parse_axiom("A isa B") in tbox
    assert parse_axiom("A isa C") in tbox


def test_syntactic_splits_lhs_disjunction():
    ontology = OwlOntology()
    ontology.subclass(Or(A, B), C)
    tbox = syntactic_approximation(ontology)
    assert parse_axiom("A isa C") in tbox
    assert parse_axiom("B isa C") in tbox


def test_syntactic_drops_noncompliant():
    ontology = OwlOntology()
    ontology.subclass(A, Or(B, C))  # disjunction on the right: dropped
    ontology.subclass(And(A, B), C)  # conjunction on the left: dropped
    tbox = syntactic_approximation(ontology)
    assert len(tbox) == 0


def test_syntactic_translates_domain_range():
    ontology = OwlOntology()
    ontology.domain("r", A)
    ontology.range("r", B)
    tbox = syntactic_approximation(ontology)
    r = AtomicRole("r")
    assert ConceptInclusion(ExistentialRole(r), AtomicConcept("A")) in tbox
    assert ConceptInclusion(
        ExistentialRole(InverseRole(r)), AtomicConcept("B")
    ) in tbox


def test_semantic_recovers_conjunct_through_inference():
    # A ⊑ B ⊓ ∃r.C is one axiom; semantic approximation extracts each
    # DL-Lite consequence even though the axiom itself is not QL.
    ontology = OwlOntology()
    ontology.subclass(A, And(B, Some("r", C)))
    tbox = semantic_approximation(ontology)
    assert parse_axiom("A isa B") in tbox
    assert ConceptInclusion(
        AtomicConcept("A"), ExistentialRole(AtomicRole("r"))
    ) in tbox
    assert ConceptInclusion(
        AtomicConcept("A"), QualifiedExistential(AtomicRole("r"), AtomicConcept("C"))
    ) in tbox


def test_semantic_range_reasoning():
    ontology = OwlOntology()
    ontology.range("r", B)
    tbox = semantic_approximation(ontology)
    assert ConceptInclusion(
        ExistentialRole(InverseRole(AtomicRole("r"))), AtomicConcept("B")
    ) in tbox


def test_semantic_is_sound_per_axiom():
    ontology = OwlOntology()
    ontology.subclass(A, Or(B, C))  # no QL consequence except trivia
    tbox = semantic_approximation(ontology)
    assert soundness_report(tbox, ontology) == []


def test_global_mode_catches_multi_axiom_inferences():
    ontology = OwlOntology()
    ontology.subclass(A, Or(B, C))
    ontology.subclass(B, OwlClass("D"))
    ontology.subclass(C, OwlClass("D"))
    per_axiom = semantic_approximation(ontology, mode="per_axiom")
    global_ = semantic_approximation(ontology, mode="global")
    target = parse_axiom("A isa D")
    assert target not in per_axiom
    assert target in global_


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        semantic_approximation(OwlOntology(), mode="psychic")


@pytest.mark.parametrize("seed", range(8))
def test_random_ontologies_sound_and_recall_ordering(seed):
    ontology = random_owl_ontology(seed, classes=4, roles=2, axioms=6)
    syntactic = syntactic_approximation(ontology)
    semantic = semantic_approximation(ontology)
    semantic_report = completeness_report(semantic, ontology)
    assert semantic_report.is_sound
    syntactic_report = completeness_report(syntactic, ontology)
    # per-axiom semantic approximation preserves at least as much as syntactic
    assert semantic_report.recall >= syntactic_report.recall - 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_global_mode_is_most_complete(seed):
    ontology = random_owl_ontology(seed, classes=3, roles=1, axioms=5)
    global_ = semantic_approximation(ontology, mode="global")
    report = completeness_report(global_, ontology)
    assert report.recall == pytest.approx(1.0)
    assert report.is_sound
