"""Unit tests for the mapping layer."""

import pytest

from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeAssertion,
    ConceptAssertion,
    Individual,
    RoleAssertion,
)
from repro.errors import MappingError
from repro.obda import Database, MappingAssertion, MappingCollection, TargetAtom
from repro.obda.mapping import IriTemplate, ValueColumn


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp", ["pid", "dept", "wage"], [(1, "cs", 100), (2, "math", 90)]
    )
    return database


def professor_mapping():
    return MappingAssertion(
        "SELECT pid, dept, wage FROM emp",
        [
            TargetAtom(AtomicConcept("Professor"), (IriTemplate("person/{pid}"),)),
            TargetAtom(
                AtomicRole("worksFor"),
                (IriTemplate("person/{pid}"), IriTemplate("dept/{dept}")),
            ),
            TargetAtom(
                AtomicAttribute("salary"),
                (IriTemplate("person/{pid}"), ValueColumn("wage")),
            ),
        ],
        identifier="m_prof",
    )


def test_template_placeholders():
    template = IriTemplate("a/{x}/b/{y}")
    assert template.placeholders == ("x", "y")
    assert template.apply({"x": 1, "y": "q"}) == Individual("a/1/b/q")
    with pytest.raises(MappingError):
        template.apply({"x": 1})


def test_target_atom_arity_validation():
    with pytest.raises(MappingError):
        TargetAtom(AtomicConcept("A"), (IriTemplate("a/{x}"), IriTemplate("b/{y}")))
    with pytest.raises(MappingError):
        TargetAtom(AtomicRole("P"), (IriTemplate("a/{x}"),))
    with pytest.raises(MappingError):
        TargetAtom(AtomicRole("P"), (IriTemplate("a/{x}"), ValueColumn("v")))
    with pytest.raises(MappingError):
        TargetAtom(AtomicAttribute("u"), (ValueColumn("v"), ValueColumn("w")))


def test_mapping_needs_targets():
    with pytest.raises(MappingError):
        MappingAssertion("SELECT pid FROM emp", [])


def test_materialize_builds_virtual_abox(db):
    mappings = MappingCollection([professor_mapping()])
    abox = mappings.materialize(db)
    ada = Individual("person/1")
    assert ConceptAssertion(AtomicConcept("Professor"), ada) in abox
    assert RoleAssertion(AtomicRole("worksFor"), ada, Individual("dept/cs")) in abox
    assert AttributeAssertion(AtomicAttribute("salary"), ada, 100) in abox
    assert len(abox) == 6


def test_predicate_extent(db):
    mappings = MappingCollection([professor_mapping()])
    extent = mappings.predicate_extent(db, "worksFor")
    assert (Individual("person/2"), Individual("dept/math")) in extent
    assert mappings.predicate_extent(db, "Unmapped") == set()


def test_multiple_mappings_union(db):
    other = MappingAssertion(
        "SELECT pid FROM emp WHERE wage = 100",
        [TargetAtom(AtomicConcept("TopEarner"), (IriTemplate("person/{pid}"),))],
    )
    mappings = MappingCollection([professor_mapping(), other])
    assert mappings.mapped_predicates() == {
        "Professor",
        "worksFor",
        "salary",
        "TopEarner",
    }
    assert mappings.predicate_extent(db, "TopEarner") == {(Individual("person/1"),)}


def test_missing_source_column_raises(db):
    bad = MappingAssertion(
        "SELECT pid FROM emp",
        [TargetAtom(AtomicConcept("A"), (IriTemplate("x/{nope}"),))],
    )
    with pytest.raises(MappingError):
        MappingCollection([bad]).predicate_extent(db, "A")
