"""Unit tests for the GraphClassifier facade."""

import pytest

from repro.core import CLOSURE_ALGORITHMS, GraphClassifier, classify
from repro.dllite import AtomicConcept, parse_tbox
from repro.errors import TimeoutExceeded
from repro.util.timing import Stopwatch


def test_classify_convenience_equals_classifier(county_tbox):
    direct = classify(county_tbox)
    via_class = GraphClassifier().classify(county_tbox)
    assert set(direct.subsumptions()) == set(via_class.subsumptions())
    assert direct.unsatisfiable() == via_class.unsatisfiable()


@pytest.mark.parametrize("algorithm", sorted(CLOSURE_ALGORITHMS))
def test_all_closure_algorithms_give_same_classification(county_tbox, algorithm):
    reference = GraphClassifier().classify(county_tbox)
    candidate = GraphClassifier(closure_algorithm=algorithm).classify(county_tbox)
    assert set(candidate.subsumptions()) == set(reference.subsumptions())
    assert candidate.unsat_ids == reference.unsat_ids


def test_timings_are_populated(county_tbox):
    classifier = GraphClassifier()
    classifier.classify(county_tbox)
    timings = classifier.timings
    assert timings.build_ms >= 0
    assert timings.closure_ms >= 0
    assert timings.unsat_ms >= 0
    assert timings.total_ms == pytest.approx(
        timings.build_ms + timings.closure_ms + timings.unsat_ms
    )


def test_budget_enforced_on_large_input():
    from repro.corpus import load_profile

    tbox = load_profile("Mouse")
    with pytest.raises(TimeoutExceeded):
        GraphClassifier().classify(tbox, watch=Stopwatch(budget_s=0.0))


def test_empty_tbox():
    classification = classify(parse_tbox(""))
    assert list(classification.subsumptions()) == []
    assert classification.unsatisfiable() == set()


def test_unknown_closure_algorithm():
    with pytest.raises(ValueError):
        GraphClassifier(closure_algorithm="nope").classify(parse_tbox("A isa B"))
