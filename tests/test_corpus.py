"""Unit tests for the synthetic benchmark corpus."""

import pytest

from repro.core import classify
from repro.corpus import (
    FIGURE1_ORDER,
    OntologyProfile,
    PROFILES,
    figure1_tboxes,
    generate,
    load_profile,
)


def test_all_eleven_figure1_rows_present():
    assert len(FIGURE1_ORDER) == 11
    assert FIGURE1_ORDER[0] == "Mouse"
    assert FIGURE1_ORDER[-1] == "FMA-OBO"
    assert set(FIGURE1_ORDER) == set(PROFILES)


def test_generation_is_deterministic():
    first = load_profile("Transportation")
    second = load_profile("Transportation")
    assert set(first.axioms) == set(second.axioms)
    assert first.signature == second.signature


def test_signature_sizes_match_profile():
    profile = PROFILES["DOLCE"]
    tbox = generate(profile)
    assert len(tbox.signature.concepts) >= profile.concepts  # + unsat seeds
    assert len(tbox.signature.roles) == profile.roles
    assert len(tbox.signature.attributes) == profile.attributes


def test_scaling_shrinks_counts():
    small = generate(PROFILES["Gene"], scale=0.1)
    full = generate(PROFILES["Gene"])
    assert len(small.signature.concepts) == pytest.approx(
        len(full.signature.concepts) * 0.1, rel=0.05
    )
    assert len(small) < len(full)


def test_no_accidental_unsat_predicates():
    """Real benchmark ontologies are (near-)clean; the generator must only
    produce the deliberately seeded unsatisfiable predicates."""
    for name in ("Transportation", "DOLCE", "AEO", "Galen"):
        tbox = load_profile(name, scale=0.5)
        classification = classify(tbox)
        expected = PROFILES[name].scaled(0.5).unsat_seeds
        unsat_names = {str(n) for n in classification.unsatisfiable()}
        # exactly the seeded Dead concepts, nothing collateral
        assert unsat_names == {f"Dead{i}" for i in range(expected)}


def test_disjointness_present_where_profiled():
    tbox = load_profile("AEO", scale=0.5)
    assert len(tbox.negative_inclusions) > 0
    mouse = load_profile("Mouse", scale=0.3)
    assert len(mouse.negative_inclusions) == 0


def test_qualified_existentials_where_profiled():
    galen = load_profile("Galen", scale=0.2)
    assert any(True for _ in galen.qualified_existentials())


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        load_profile("SNOMED")


def test_figure1_tboxes_iterates_in_order():
    names = [name for name, _ in figure1_tboxes(scale=0.05)]
    assert names == FIGURE1_ORDER


def test_profile_scaled_preserves_shape():
    profile = PROFILES["Galen"]
    scaled = profile.scaled(0.5)
    assert scaled.concepts == int(profile.concepts * 0.5)
    assert scaled.depth == profile.depth
    assert scaled.existential_fraction == profile.existential_fraction


def test_tiny_profile_edge_cases():
    tiny = OntologyProfile(name="tiny", concepts=1, roles=0)
    tbox = generate(tiny)
    assert len(tbox.signature.concepts) == 1
    assert len(tbox) == 0


def test_name_prefix_enables_multi_domain_merge():
    import dataclasses

    from repro.dllite import TBox
    from repro.graphical import horizontal_modules

    merged = TBox(name="multi")
    for name, prefix in (("Mouse", "a_"), ("Transportation", "b_")):
        part = generate(
            dataclasses.replace(PROFILES[name], name_prefix=prefix), scale=0.2
        )
        assert all(str(p).startswith(prefix) for p in part.signature)
        merged.extend(part.axioms)
        for predicate in part.signature:
            merged.declare(predicate)
    modules = [m for m in horizontal_modules(merged) if len(m) > 0]
    assert len(modules) == 2
