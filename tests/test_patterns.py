"""Unit tests for the modeling-pattern catalog (§8)."""

import pytest

from repro.core import ImplicationChecker, classify
from repro.dllite import AtomicConcept, TBox, parse_axiom
from repro.obda import OBDASystem
from repro.dllite import ABox, ConceptAssertion, Individual, RoleAssertion, AtomicRole
from repro.patterns import (
    n_ary_relation_pattern,
    part_whole_pattern,
    role_qualification_pattern,
    temporal_snapshot_pattern,
)


def test_part_whole_matches_figure2():
    instance = part_whole_pattern(
        "County", "State", role="isPartOf", mandatory_whole=True
    )
    axioms = set(instance.axioms)
    assert parse_axiom("County isa exists isPartOf . State") in axioms
    assert parse_axiom("State isa exists isPartOf^- . County") in axioms


def test_part_whole_exclusive_adds_functionality():
    instance = part_whole_pattern("Wheel", "Car", exclusive=True)
    assert parse_axiom("funct isPartOf") in set(instance.axioms)


def test_apply_merges_into_tbox():
    tbox = TBox(name="geo")
    part_whole_pattern("County", "State").apply(tbox)
    assert len(tbox) >= 1
    classification = classify(tbox)
    assert classification.unsatisfiable() == set()


def test_temporal_snapshot_entailments():
    tbox = TBox()
    temporal_snapshot_pattern("Employee").apply(tbox)
    checker = ImplicationChecker.for_tbox(tbox)
    assert checker.entails(
        parse_axiom("Employee isa exists hasSnapshot . EmployeeSnapshot")
    )
    assert checker.entails(parse_axiom("EmployeeSnapshot isa domain(atTime)"))
    assert checker.entails(parse_axiom("Employee isa not EmployeeSnapshot"))
    assert classify(tbox).unsatisfiable() == set()


def test_temporal_snapshot_functionality_checked_by_obda():
    tbox = TBox()
    temporal_snapshot_pattern("Employee").apply(tbox)
    abox = ABox(
        [
            RoleAssertion(AtomicRole("hasSnapshot"), Individual("e1"), Individual("s1")),
            RoleAssertion(AtomicRole("hasSnapshot"), Individual("e2"), Individual("s1")),
        ]
    )
    system = OBDASystem(tbox, abox=abox)
    # snapshot s1 has two subjects: violates (funct hasSnapshot⁻)
    assert not system.is_consistent()


def test_n_ary_relation_reification():
    instance = n_ary_relation_pattern(
        "Exam", [("examStudent", "Student"), ("examCourse", "Course")]
    )
    tbox = TBox()
    instance.apply(tbox)
    checker = ImplicationChecker.for_tbox(tbox)
    assert checker.entails(parse_axiom("Exam isa exists examStudent . Student"))
    assert checker.entails(parse_axiom("Exam isa exists examCourse . Course"))
    assert "Exam" in instance.introduced
    with pytest.raises(ValueError):
        n_ary_relation_pattern("Solo", [("only", "Thing")])


def test_role_qualification():
    instance = role_qualification_pattern(
        "worksFor", "leads", domain="Manager", range_="Team"
    )
    tbox = TBox()
    instance.apply(tbox)
    checker = ImplicationChecker.for_tbox(tbox)
    assert checker.entails(parse_axiom("leads^- isa worksFor^-"))
    assert checker.entails(parse_axiom("exists leads isa Manager"))
    # a leader works for the team they lead (role chain via hierarchy)
    assert checker.entails(parse_axiom("Manager isa Manager")) is True


def test_patterns_document_themselves():
    for instance in (
        part_whole_pattern("A", "B"),
        temporal_snapshot_pattern("C"),
        n_ary_relation_pattern("R", [("l1", "X"), ("l2", "Y")]),
        role_qualification_pattern("g", "q"),
    ):
        assert instance.rationale
        assert instance.name
        assert list(instance)  # iterable over axioms
