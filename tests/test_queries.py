"""Unit tests for conjunctive queries, UCQs, homomorphisms, minimization."""

import pytest

from repro.errors import SyntaxError_, UnknownPredicate
from repro.obda import (
    Atom,
    ConjunctiveQuery,
    Constant,
    UnionQuery,
    Variable,
    homomorphism_exists,
    minimize_ucq,
    parse_cq,
    parse_query,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def test_atom_arity_validation():
    Atom("A", (x,))
    Atom("P", (x, y))
    with pytest.raises(UnknownPredicate):
        Atom("T", (x, y, z))


def test_answer_vars_must_occur_in_body():
    with pytest.raises(UnknownPredicate):
        ConjunctiveQuery([x], [Atom("A", (y,))])


def test_cq_equality_up_to_renaming():
    q1 = ConjunctiveQuery([x], [Atom("P", (x, y))])
    q2 = ConjunctiveQuery([x], [Atom("P", (x, z))])
    assert q1 == q2
    assert hash(q1) == hash(q2)
    q3 = ConjunctiveQuery([x], [Atom("P", (y, x))])
    assert q1 != q3


def test_substitute_and_rename_apart():
    q = ConjunctiveQuery([x], [Atom("P", (x, y))])
    renamed = q.rename_apart("_0")
    assert renamed == q  # equality is modulo existential renaming
    assert renamed.atoms[0].args[1] == Variable("y_0")


def test_parse_cq_variables_and_constants():
    q = parse_cq("q(x) :- worksFor(x, 'DIAG'), Person(x)")
    assert q.answer_vars == (x,)
    assert Atom("worksFor", (x, Constant("DIAG"))) in q.atoms
    q2 = parse_cq("q(x) :- age(x, 42)")
    assert Atom("age", (x, Constant(42))) in q2.atoms


def test_parse_boolean_query():
    q = parse_cq("q() :- Person(x)")
    assert q.is_boolean
    assert q.arity == 0


def test_parse_ucq_disjuncts():
    ucq = parse_query("q(x) :- County(x) ; Municipality(x)")
    assert len(ucq) == 2
    assert ucq.arity == 1


def test_parse_rejects_constant_in_head():
    with pytest.raises(SyntaxError_):
        parse_cq("q('a') :- P(x, y)")


def test_parse_rejects_empty_body():
    with pytest.raises(SyntaxError_):
        parse_cq("q(x) :- ")


def test_ucq_rejects_mixed_arity():
    q1 = parse_cq("q(x) :- A(x)")
    q2 = parse_cq("q(x, y) :- P(x, y)")
    with pytest.raises(UnknownPredicate):
        UnionQuery([q1, q2])


def test_homomorphism_basic():
    general = parse_cq("q(x) :- Person(x)")
    specific = parse_cq("q(x) :- Person(x), Teacher(x)")
    assert homomorphism_exists(general, specific)
    assert not homomorphism_exists(specific, general)


def test_homomorphism_respects_answer_vars():
    q1 = parse_cq("q(x) :- P(x, y)")
    q2 = parse_cq("q(x) :- P(y, x)")
    assert not homomorphism_exists(q1, q2)


def test_homomorphism_with_constants():
    general = parse_cq("q(x) :- P(x, y)")
    specific = parse_cq("q(x) :- P(x, 'a')")
    assert homomorphism_exists(general, specific)
    assert not homomorphism_exists(specific, general)


def test_homomorphism_collapsing_variables():
    general = parse_cq("q() :- P(x, y)")
    specific = parse_cq("q() :- P(z, z)")
    assert homomorphism_exists(general, specific)


def test_minimize_drops_subsumed_disjuncts():
    ucq = parse_query("q(x) :- Person(x) ; Person(x), Teacher(x) ; Student(x)")
    minimized = minimize_ucq(ucq)
    assert len(minimized) == 2
    bodies = {len(cq.atoms) for cq in minimized}
    assert bodies == {1}


def test_minimize_keeps_incomparable():
    ucq = parse_query("q(x) :- A(x) ; B(x)")
    assert len(minimize_ucq(ucq)) == 2


def test_str_rendering():
    q = parse_cq("q(x) :- Teacher(x), teaches(x, y)")
    assert str(q) == "q(x) :- Teacher(x), teaches(x, y)"
