"""Unit tests for repro.runtime.budget (Deadline/Budget) and Stopwatch compat."""

import time

import pytest

from repro.errors import TimeoutExceeded
from repro.runtime import Budget, Deadline
from repro.util.timing import Stopwatch


def test_deadline_after_and_remaining():
    deadline = Deadline.after(1000.0)
    assert deadline.remaining_s() > 999.0
    assert not deadline.expired()
    past = Deadline.after(-1.0)
    assert past.expired()
    assert past.remaining_s() < 0


def test_unbounded_budget_never_raises():
    budget = Budget(task="free")
    budget.check()
    budget.check_budget()
    for _ in range(3000):
        budget.tick()
    assert budget.remaining_s is None
    assert budget.deadline is None
    assert not budget.expired()


def test_exhausted_budget_raises_with_task_name():
    budget = Budget(0.0, task="rewrite:q17")
    time.sleep(0.001)
    with pytest.raises(TimeoutExceeded) as info:
        budget.check()
    assert info.value.task == "rewrite:q17"
    assert "rewrite:q17" in str(info.value)
    assert info.value.budget_s == 0.0
    assert info.value.elapsed_s > 0


def test_tick_amortizes_but_still_fires():
    budget = Budget(0.0, task="hot loop")
    time.sleep(0.001)
    # Fewer than one stride of ticks: no clock poll, no raise.
    for _ in range(Budget.TICK_STRIDE - 1):
        budget.tick()
    with pytest.raises(TimeoutExceeded):
        budget.tick()  # stride boundary reached -> real check


def test_scoped_shares_the_allowance():
    budget = Budget(1000.0, task="parent")
    time.sleep(0.002)
    child = budget.scoped("child phase")
    # Same clock: the child's elapsed time includes the parent's.
    assert child.elapsed_s >= 0.002
    assert child.budget_s == 1000.0
    assert child.task == "child phase"
    starved = Budget(0.0, task="parent")
    time.sleep(0.001)
    with pytest.raises(TimeoutExceeded) as info:
        starved.scoped("inner").check()
    assert info.value.task == "inner"


def test_ensure_coerces_loose_inputs():
    assert Budget.ensure(None) is None
    from_seconds = Budget.ensure(5, task="named")
    assert isinstance(from_seconds, Budget)
    assert from_seconds.budget_s == 5.0
    assert from_seconds.task == "named"
    existing = Budget(1.0, task="original")
    assert Budget.ensure(existing, task="ignored") is existing


def test_deadline_property_tracks_allowance():
    budget = Budget(100.0, task="t")
    deadline = budget.deadline
    assert 99.0 < deadline.remaining_s() <= 100.0


def test_restart_resets_clock_and_ticks():
    budget = Budget(0.05, task="t")
    time.sleep(0.002)
    budget.restart()
    assert budget.elapsed_s < 0.002
    budget.check()


def test_stopwatch_is_a_budget():
    """Backward compat: Stopwatch is the Budget everyone already passes."""
    watch = Stopwatch(budget_s=1000)
    assert isinstance(watch, Budget)
    watch.check_budget()
    assert Budget.ensure(watch) is watch
    tight = Stopwatch(budget_s=0.0)
    time.sleep(0.001)
    with pytest.raises(TimeoutExceeded) as info:
        tight.check_budget()
    # Stopwatch keeps the historical "reasoning task" label.
    assert "reasoning task" in str(info.value)
