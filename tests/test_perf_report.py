"""The perf-report harness and its CLI surface."""

from __future__ import annotations

import json

from repro.cli import main
from repro.perf.report import check_report, format_report, run_perf_report

ARGS = dict(profile="Mouse", scale=0.1, seed=7, queries=3, repeats=2)


def test_report_is_healthy_and_checkable():
    report = run_perf_report(**ARGS)
    assert check_report(report) == []
    assert report["coherent"]
    assert report["timings"]["warm_s"] <= report["timings"]["cold_s"]
    assert report["caches"]["answers"]["hits"] > 0
    assert report["caches"]["rewriting"]["hits"] > 0
    assert len(report["per_query"]) == 3
    rendered = format_report(report)
    assert "cold pass" in rendered and "cache answers" in rendered


def test_check_report_flags_regressions():
    report = run_perf_report(**ARGS)
    broken = json.loads(json.dumps(report))  # deep copy
    broken["caches"]["rewriting"]["hit_rate"] = 0.0
    broken["timings"]["warm_s"] = broken["timings"]["cold_s"] + 1.0
    broken["coherent"] = False
    failures = check_report(broken)
    assert len(failures) == 3
    assert any("rewriting" in failure for failure in failures)
    assert any("slower" in failure for failure in failures)
    assert any("incoherence" in failure for failure in failures)


def test_report_probes_the_pushdown_gap():
    report = run_perf_report(**ARGS)
    gap = report["pushdown_gap"]
    assert gap["match"]  # sqlite answers equal planned in-memory answers
    assert gap["pushdown_s"] > 0 and gap["planned_sql_s"] > 0
    rendered = format_report(report)
    assert "pushdown gap" in rendered


def test_check_report_flags_pushdown_regressions():
    report = run_perf_report(**ARGS)
    broken = json.loads(json.dumps(report))
    broken["pushdown_gap"]["match"] = False
    broken["pushdown_gap"]["ratio"] = 25.0
    broken["pushdown_gap"]["recorded"] = {
        "ok": False,
        "rows": 100000,
        "reference_rows": 2000,
        "pushed_warm_requery_s": 0.5,
        "planned_reference_s": 0.03,
    }
    failures = check_report(broken)
    assert any("diverge from the planned" in failure for failure in failures)
    assert any("recorded pushdown bench gate" in failure for failure in failures)
    assert any("pushdown has regressed" in failure for failure in failures)


def test_check_report_rejects_traced_measurements():
    report = run_perf_report(**ARGS)
    assert report["tracing_enabled"] is False  # NullTracer is the default
    traced = json.loads(json.dumps(report))
    traced["tracing_enabled"] = True
    failures = check_report(traced)
    assert any("tracing enabled" in failure for failure in failures)


def test_report_records_an_active_tracer():
    from repro.obs.trace import Tracer, use_tracer

    with use_tracer(Tracer("perf-under-trace")):
        report = run_perf_report(**ARGS)
    assert report["tracing_enabled"] is True
    assert any("tracing enabled" in failure for failure in check_report(report))


def test_cli_perf_report_check_and_json(tmp_path, capsys):
    out = tmp_path / "perf.json"
    code = main(
        [
            "perf-report",
            "--profile", "Mouse",
            "--scale", "0.1",
            "--queries", "3",
            "--repeats", "2",
            "--json", str(out),
            "--check",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "perf-report: Mouse" in captured.out
    report = json.loads(out.read_text())
    assert report["harness"] == "repro perf-report"
    assert check_report(report) == []
