"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DiagramError,
    InconsistentOntology,
    LanguageViolation,
    MappingError,
    ReproError,
    SyntaxError_,
    TimeoutExceeded,
    UnknownPredicate,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (
        SyntaxError_,
        LanguageViolation,
        UnknownPredicate,
        InconsistentOntology,
        MappingError,
        TimeoutExceeded,
        DiagramError,
    ):
        assert issubclass(error_type, ReproError)


def test_syntax_error_position_rendering():
    error = SyntaxError_("bad token", "A isa B", 2)
    assert "position 2" in str(error)
    assert error.text == "A isa B"
    plain = SyntaxError_("bad token")
    assert "position" not in str(plain)


def test_timeout_carries_budget():
    error = TimeoutExceeded(30.0, 31.5)
    assert error.budget_s == 30.0
    assert error.elapsed_s == 31.5
    assert "30.0s" in str(error)


def test_one_except_catches_the_pipeline():
    from repro.dllite import parse_tbox

    with pytest.raises(ReproError):
        parse_tbox("A isa isa B")
