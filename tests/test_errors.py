"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DegradedResult,
    DiagramError,
    InconsistentOntology,
    LanguageViolation,
    MappingError,
    PermanentSourceError,
    ReproError,
    SourceError,
    SyntaxError_,
    TimeoutExceeded,
    TransientSourceError,
    UnknownPredicate,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (
        SyntaxError_,
        LanguageViolation,
        UnknownPredicate,
        InconsistentOntology,
        MappingError,
        TimeoutExceeded,
        DiagramError,
        SourceError,
        TransientSourceError,
        PermanentSourceError,
    ):
        assert issubclass(error_type, ReproError)


def test_source_error_taxonomy():
    # One except arm distinguishes "retry it" from "give up", and both
    # are catchable as the common SourceError.
    assert issubclass(TransientSourceError, SourceError)
    assert issubclass(PermanentSourceError, SourceError)
    assert not issubclass(TransientSourceError, PermanentSourceError)
    assert not issubclass(PermanentSourceError, TransientSourceError)


def test_degraded_result_is_a_warning_not_an_error():
    import warnings

    assert issubclass(DegradedResult, UserWarning)
    assert not issubclass(DegradedResult, ReproError)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warnings.warn("served by fallback", DegradedResult)
    assert len(caught) == 1


def test_errors_are_exported_from_the_package_root():
    import repro

    for name in (
        "ReproError",
        "TimeoutExceeded",
        "SourceError",
        "TransientSourceError",
        "PermanentSourceError",
        "DegradedResult",
    ):
        assert hasattr(repro, name)
        assert name in repro.__all__


def test_syntax_error_position_rendering():
    error = SyntaxError_("bad token", "A isa B", 2)
    assert "position 2" in str(error)
    assert error.text == "A isa B"
    plain = SyntaxError_("bad token")
    assert "position" not in str(plain)


def test_timeout_carries_budget():
    error = TimeoutExceeded(30.0, 31.5)
    assert error.budget_s == 30.0
    assert error.elapsed_s == 31.5
    assert "30.0s" in str(error)


def test_timeout_carries_the_task_name():
    error = TimeoutExceeded(30.0, 31.5, task="rewrite:q7")
    assert error.task == "rewrite:q7"
    assert str(error).startswith("rewrite:q7 exceeded")
    # Without a task the historical message is preserved.
    anonymous = TimeoutExceeded(30.0, 31.5)
    assert anonymous.task is None
    assert "reasoning task" in str(anonymous)


def test_one_except_catches_the_pipeline():
    from repro.dllite import parse_tbox

    with pytest.raises(ReproError):
        parse_tbox("A isa isa B")
