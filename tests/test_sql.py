"""Unit tests for the relational engine (tables, algebra, SQL parser)."""

import pytest

from repro.errors import MappingError, SyntaxError_
from repro.obda.sql import (
    Condition,
    Const,
    Database,
    Join,
    Projection,
    Rename,
    Scan,
    Selection,
    Table,
    UnionAll,
    evaluate,
    parse_sql,
)


@pytest.fixture
def db():
    database = Database("campus")
    database.create_table(
        "staff",
        ["id", "name", "role"],
        [(1, "ada", "prof"), (2, "alan", "prof"), (3, "grace", "lecturer")],
    )
    database.create_table(
        "teaching", ["staff_id", "course"], [(1, "logic"), (2, "compilers"), (1, "sets")]
    )
    return database


# -- tables / database ---------------------------------------------------------


def test_table_rejects_arity_mismatch():
    table = Table("t", ["a", "b"])
    with pytest.raises(MappingError):
        table.insert((1,))


def test_table_rejects_duplicate_columns():
    with pytest.raises(MappingError):
        Table("t", ["a", "a"])


def test_database_lookups(db):
    assert "staff" in db
    assert len(db["staff"]) == 3
    with pytest.raises(MappingError):
        db.table("nope")
    with pytest.raises(MappingError):
        db.create_table("staff", ["x"])


# -- algebra ----------------------------------------------------------------------


def test_scan_qualifies_columns(db):
    result = evaluate(Scan("staff"), db)
    assert result.columns == ("staff.id", "staff.name", "staff.role")
    assert len(result) == 3


def test_selection_with_constant(db):
    expr = Selection(Scan("staff"), (Condition("role", Const("prof"), "="),))
    assert len(evaluate(expr, db)) == 2


def test_selection_not_equal(db):
    expr = Selection(Scan("staff"), (Condition("role", Const("prof"), "!="),))
    result = evaluate(expr, db)
    assert [row[1] for row in result.rows] == ["grace"]


def test_projection_renames_and_dedupes(db):
    expr = Projection(Scan("staff"), ("role",), ("r",))
    result = evaluate(expr, db)
    assert result.columns == ("r",)
    assert sorted(result.rows) == [("lecturer",), ("prof",)]


def test_join_on_columns(db):
    expr = Join(Scan("staff"), Scan("teaching"), on=(("staff.id", "teaching.staff_id"),))
    result = evaluate(expr, db)
    assert len(result) == 3
    names = {row[result.column_index("staff.name")] for row in result.rows}
    assert names == {"ada", "alan"}


def test_cross_join_empty_on(db):
    expr = Join(Scan("staff"), Scan("teaching"), on=())
    assert len(evaluate(expr, db)) == 9


def test_union_all_checks_arity(db):
    expr = UnionAll((Projection(Scan("staff"), ("id",)), Scan("teaching")))
    with pytest.raises(MappingError):
        evaluate(expr, db)


def test_rename_prefixes(db):
    expr = Rename(Projection(Scan("staff"), ("id",)), "m1")
    result = evaluate(expr, db)
    assert result.columns == ("m1.id",)


def test_ambiguous_column_rejected(db):
    expr = Join(Scan("staff", "s1"), Scan("staff", "s2"), on=())
    with pytest.raises(MappingError):
        evaluate(Selection(expr, (Condition("id", Const(1), "="),)), db)


# -- SQL parser -----------------------------------------------------------------


def test_parse_simple_select(db):
    result = evaluate(parse_sql("SELECT id, name FROM staff WHERE role = 'prof'"), db)
    assert sorted(result.rows) == [(1, "ada"), (2, "alan")]


def test_parse_join(db):
    sql = "SELECT s.name, t.course FROM staff s JOIN teaching t ON s.id = t.staff_id"
    result = evaluate(parse_sql(sql), db)
    assert ("ada", "logic") in result.rows
    assert len(result) == 3


def test_parse_comma_join_with_where(db):
    sql = (
        "SELECT name, course FROM staff, teaching "
        "WHERE staff.id = teaching.staff_id AND role = 'prof'"
    )
    result = evaluate(parse_sql(sql), db)
    assert len(result) == 3


def test_parse_union(db):
    sql = "SELECT id FROM staff WHERE role = 'prof' UNION SELECT staff_id FROM teaching"
    result = evaluate(parse_sql(sql), db)
    assert sorted(set(result.rows)) == [(1,), (2,)]


def test_parse_star(db):
    result = evaluate(parse_sql("SELECT * FROM staff"), db)
    assert len(result.columns) == 3


def test_parse_numeric_literal(db):
    result = evaluate(parse_sql("SELECT name FROM staff WHERE id = 2"), db)
    assert result.rows == [("alan",)]


def test_parse_string_escape():
    database = Database()
    database.create_table("t", ["v"], [("it's",)])
    result = evaluate(parse_sql("SELECT v FROM t WHERE v = 'it''s'"), database)
    assert len(result) == 1


def test_parse_errors():
    with pytest.raises(SyntaxError_):
        parse_sql("SELECT FROM t")
    with pytest.raises(SyntaxError_):
        parse_sql("SELECT a FROM t WHERE a <")
    with pytest.raises(SyntaxError_):
        parse_sql("SELECT a FROM t extra garbage !")
