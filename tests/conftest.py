"""Shared fixtures and random-ontology helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedRole,
    QualifiedExistential,
    RoleInclusion,
    TBox,
    negate,
    parse_tbox,
)


def make_random_tbox(
    rng: random.Random,
    n_concepts: int = 4,
    n_roles: int = 2,
    n_axioms: int = 8,
    negative_fraction: float = 0.2,
    qualified_fraction: float = 0.25,
) -> TBox:
    """A small random DL-Lite_R TBox (used by the cross-check tests)."""
    concepts = [AtomicConcept(f"C{i}") for i in range(n_concepts)]
    roles = [AtomicRole(f"P{i}") for i in range(n_roles)]
    basic_roles = roles + [InverseRole(role) for role in roles]
    basics = concepts + [ExistentialRole(role) for role in basic_roles]
    tbox = TBox()
    for concept in concepts:
        tbox.declare(concept)
    for role in roles:
        tbox.declare(role)
    for _ in range(n_axioms):
        if rng.random() < 0.65 or not basic_roles:
            lhs = rng.choice(basics)
            draw = rng.random()
            if draw < negative_fraction:
                tbox.add(ConceptInclusion(lhs, negate(rng.choice(basics))))
            elif draw < negative_fraction + qualified_fraction:
                tbox.add(
                    ConceptInclusion(
                        lhs,
                        QualifiedExistential(
                            rng.choice(basic_roles), rng.choice(concepts)
                        ),
                    )
                )
            else:
                tbox.add(ConceptInclusion(lhs, rng.choice(basics)))
        else:
            first, second = rng.choice(basic_roles), rng.choice(basic_roles)
            if rng.random() < negative_fraction:
                tbox.add(RoleInclusion(first, NegatedRole(second)))
            else:
                tbox.add(RoleInclusion(first, second))
    return tbox


@pytest.fixture
def county_tbox() -> TBox:
    """The paper's Figure 2 axioms plus a small surrounding hierarchy."""
    return parse_tbox(
        """
        role isPartOf, locatedIn
        County isa exists isPartOf . State
        State isa exists isPartOf^- . County
        isPartOf isa locatedIn
        Municipality isa County
        County isa not State
        """
    )


@pytest.fixture
def university_tbox() -> TBox:
    return parse_tbox(
        """
        role teaches, attends
        attribute salary
        Professor isa Teacher
        Teacher isa Person
        Student isa Person
        Teacher isa exists teaches
        exists teaches isa Teacher
        exists teaches^- isa Course
        domain(salary) isa Employee
        Professor isa domain(salary)
        Student isa not Teacher
        funct salary
        """
    )
