"""Property-based tests for the query layer and relational algebra."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.obda import (
    Atom,
    ConjunctiveQuery,
    Constant,
    UnionQuery,
    Variable,
    homomorphism_exists,
    minimize_ucq,
)
from repro.obda.evaluation import ABoxExtents, evaluate_cq, evaluate_ucq
from repro.dllite import ABox, AtomicConcept, AtomicRole, ConceptAssertion, Individual, RoleAssertion

VARS = [Variable(name) for name in "xyzw"]
CONSTS = [Constant("a"), Constant("b")]
UNARY = ["A", "B"]
BINARY = ["P", "R"]

terms_st = st.sampled_from(VARS + CONSTS)
unary_atom_st = st.builds(
    lambda p, t: Atom(p, (t,)), st.sampled_from(UNARY), terms_st
)
binary_atom_st = st.builds(
    lambda p, s, o: Atom(p, (s, o)), st.sampled_from(BINARY), terms_st, terms_st
)
atom_st = st.one_of(unary_atom_st, binary_atom_st)


@st.composite
def cq_st(draw, max_atoms=4):
    atoms = draw(st.lists(atom_st, min_size=1, max_size=max_atoms))
    variables = sorted(
        {t for a in atoms for t in a.args if isinstance(t, Variable)},
        key=lambda v: v.name,
    )
    answer_count = draw(st.integers(0, min(2, len(variables))))
    return ConjunctiveQuery(tuple(variables[:answer_count]), atoms)


_settings = settings(
    max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(cq_st())
@_settings
def test_homomorphism_is_reflexive(cq):
    assert homomorphism_exists(cq, cq)


@given(cq_st(), cq_st(), cq_st())
@_settings
def test_homomorphism_is_transitive(first, second, third):
    if homomorphism_exists(first, second) and homomorphism_exists(second, third):
        assert homomorphism_exists(first, third)


@st.composite
def abox_st(draw):
    abox = ABox()
    individuals = [Individual(n) for n in "ab"]
    for _ in range(draw(st.integers(0, 8))):
        if draw(st.booleans()):
            abox.add(
                ConceptAssertion(
                    AtomicConcept(draw(st.sampled_from(UNARY))),
                    draw(st.sampled_from(individuals)),
                )
            )
        else:
            abox.add(
                RoleAssertion(
                    AtomicRole(draw(st.sampled_from(BINARY))),
                    draw(st.sampled_from(individuals)),
                    draw(st.sampled_from(individuals)),
                )
            )
    return abox


def _fix_constants(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """Constants 'a'/'b' line up with the ABox individuals by string value."""
    return cq


@given(cq_st(), cq_st(), abox_st())
@_settings
def test_homomorphism_implies_answer_containment(general, specific, abox):
    """If general → specific has a homomorphism, every answer of specific
    is an answer of general (the semantic meaning of containment)."""
    if len(general.answer_vars) != len(specific.answer_vars):
        return
    if not homomorphism_exists(general, specific):
        return
    extents = ABoxExtents(abox)
    specific_answers = {
        tuple(str(v) for v in row) for row in evaluate_cq(specific, extents)
    }
    general_answers = {
        tuple(str(v) for v in row) for row in evaluate_cq(general, extents)
    }
    assert specific_answers <= general_answers


@given(st.lists(cq_st(max_atoms=3), min_size=1, max_size=4), abox_st())
@_settings
def test_minimization_preserves_answers(disjuncts, abox):
    arity = disjuncts[0].arity
    aligned = [cq for cq in disjuncts if cq.arity == arity]
    ucq = UnionQuery(aligned)
    minimized = minimize_ucq(ucq)
    assert len(minimized) <= len(ucq)
    extents = ABoxExtents(abox)
    assert evaluate_ucq(minimized, extents) == evaluate_ucq(ucq, extents)


@given(cq_st(), abox_st())
@_settings
def test_evaluation_answers_have_query_arity(cq, abox):
    for answer in evaluate_cq(cq, ABoxExtents(abox)):
        assert len(answer) == cq.arity
