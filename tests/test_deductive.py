"""Unit tests for the deductive closure, cross-checked against saturation."""

import random

import pytest

from repro.baselines.saturation import Saturation
from repro.core import GraphClassifier, deductive_closure, qualified_inclusions
from repro.dllite import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRole,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    QualifiedExistential,
    RoleInclusion,
    parse_axiom,
    parse_tbox,
)
from tests.conftest import make_random_tbox

A, B, C = AtomicConcept("A"), AtomicConcept("B"), AtomicConcept("C")
P, R = AtomicRole("P"), AtomicRole("R")


def test_closure_contains_transitive_positives():
    closure = deductive_closure(parse_tbox("A isa B\nB isa C"))
    assert ConceptInclusion(A, C) in closure


def test_closure_contains_role_derived_existentials():
    closure = deductive_closure(parse_tbox("role P, R\nP isa R"))
    assert RoleInclusion(P, R) in closure
    assert ConceptInclusion(ExistentialRole(P), ExistentialRole(R)) in closure
    assert RoleInclusion(InverseRole(P), InverseRole(R)) in closure


def test_qualified_filler_climbs_taxonomy():
    closure = deductive_closure(parse_tbox("A isa exists P . B\nB isa C"))
    assert ConceptInclusion(A, QualifiedExistential(P, C)) in closure


def test_qualified_role_climbs_hierarchy():
    closure = deductive_closure(parse_tbox("A isa exists P . B\nP isa R"))
    assert ConceptInclusion(A, QualifiedExistential(R, B)) in closure


def test_range_axiom_induces_qualified():
    # A ⊑ ∃P and ∃P⁻ ⊑ B entail A ⊑ ∃P.B
    closure = deductive_closure(parse_tbox("A isa exists P\nexists P^- isa B"))
    assert ConceptInclusion(A, QualifiedExistential(P, B)) in closure


def test_implicit_witness_for_existential_lhs():
    # ∃P ⊑ ∃P.B whenever range(P) ⊑ B
    closure = deductive_closure(parse_tbox("exists P^- isa B\nconcept A"))
    assert ConceptInclusion(
        ExistentialRole(P), QualifiedExistential(P, B)
    ) in closure


def test_negative_closure_downward():
    closure = deductive_closure(parse_tbox("A isa B\nB isa not C\nSub isa C"))
    assert ConceptInclusion(A, NegatedConcept(C)) in closure
    assert ConceptInclusion(C, NegatedConcept(A)) in closure
    assert ConceptInclusion(A, NegatedConcept(AtomicConcept("Sub"))) in closure


def test_domain_disjointness_entails_role_disjointness():
    closure = deductive_closure(
        parse_tbox("role P, R\nexists P isa X\nexists R isa Y\nX isa not Y")
    )
    assert RoleInclusion(P, NegatedRole(R)) in closure
    assert RoleInclusion(InverseRole(P), NegatedRole(InverseRole(R))) in closure


def test_role_disjointness_does_not_leak_to_domains():
    closure = deductive_closure(parse_tbox("role P, R\nP isa not R"))
    assert ConceptInclusion(
        ExistentialRole(P), NegatedConcept(ExistentialRole(R))
    ) not in closure


@pytest.mark.parametrize("seed", range(40))
def test_matches_saturation_oracle(seed):
    """Deductive closure == the independent saturation's consequences."""
    tbox = make_random_tbox(random.Random(seed), n_concepts=3, n_roles=2, n_axioms=6)
    closure = deductive_closure(tbox)
    saturation = Saturation(tbox)
    for axiom in closure:
        if isinstance(axiom, ConceptInclusion):
            if isinstance(axiom.rhs, QualifiedExistential):
                assert saturation.entails_qualified(
                    axiom.lhs, axiom.rhs.role, axiom.rhs.filler
                ), f"not entailed per saturation: {axiom}"
            elif isinstance(axiom.rhs, NegatedConcept):
                assert saturation.entails_negative(axiom.lhs, axiom.rhs.concept), axiom
            else:
                assert saturation.entails_pair(axiom.lhs, axiom.rhs), axiom
        elif isinstance(axiom, RoleInclusion):
            if isinstance(axiom.rhs, NegatedRole):
                assert saturation.entails_negative(axiom.lhs, axiom.rhs.role), axiom
            else:
                assert saturation.entails_pair(axiom.lhs, axiom.rhs), axiom


@pytest.mark.parametrize("seed", range(40, 60))
def test_covers_saturation_basics(seed):
    """Every saturation consequence between digraph nodes is in the closure."""
    tbox = make_random_tbox(random.Random(seed), n_concepts=3, n_roles=1, n_axioms=6)
    closure = deductive_closure(tbox)
    saturation = Saturation(tbox)
    closure_set = set(closure)
    for lhs, rhs in saturation.positive:
        if lhs != rhs:
            if isinstance(lhs, (AtomicRole, InverseRole)):
                assert RoleInclusion(lhs, rhs) in closure_set, (lhs, rhs)
            else:
                assert ConceptInclusion(lhs, rhs) in closure_set, (lhs, rhs)
