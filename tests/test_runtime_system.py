"""Budget threading through the OBDA pipeline (satellite coverage).

Asserts that ``OBDASystem.certain_answers``, consistency checking,
rewriting and evaluation all honor one shared allowance, abort with a
task-named :class:`TimeoutExceeded`, and never change answers when the
budget is generous.
"""

import time

import pytest

from repro.errors import TimeoutExceeded
from repro.obda.evaluation import ABoxExtents, evaluate_ucq
from repro.obda.cq_parser import parse_query
from repro.obda.rewriting.perfectref import perfect_ref
from repro.runtime import Budget, ExecutionContext

from tests.test_runtime_faults import make_campus_db, make_university

METHODS = ("perfectref", "perfectref-sql", "presto")


def expired_budget():
    budget = Budget(0.0, task="test allowance")
    time.sleep(0.001)
    return budget


@pytest.fixture
def university():
    return make_university(make_campus_db())


@pytest.mark.parametrize("method", METHODS)
def test_certain_answers_aborts_on_exhausted_budget(university, method):
    with pytest.raises(TimeoutExceeded) as info:
        university.certain_answers(
            "q(x) :- Person(x)", method=method, budget=expired_budget()
        )
    assert info.value.task  # the phase that overran is named


@pytest.mark.parametrize("method", METHODS)
def test_generous_budget_never_changes_certain_answers(method):
    unbudgeted = make_university(make_campus_db()).certain_answers(
        "q(x) :- Person(x)", method=method
    )
    budgeted = make_university(make_campus_db()).certain_answers(
        "q(x) :- Person(x)", method=method, budget=60.0
    )
    assert budgeted == unbudgeted
    assert len(budgeted) == 5


def test_consistency_checking_is_bounded(university):
    context = university.execution_context(budget=expired_budget())
    with pytest.raises(TimeoutExceeded) as info:
        university.is_consistent(context=context)
    assert "consistency" in info.value.task
    with pytest.raises(TimeoutExceeded):
        university.inconsistency_witnesses(
            context=university.execution_context(budget=expired_budget())
        )
    with pytest.raises(TimeoutExceeded):
        university.functionality_violations(
            context=university.execution_context(budget=expired_budget())
        )


def test_budget_abort_does_not_poison_the_rewriting_cache(university):
    with pytest.raises(TimeoutExceeded):
        university.rewrite("q(x) :- Person(x)", budget=expired_budget())
    # The aborted attempt must not have cached a partial rewriting.
    ucq = university.rewrite("q(x) :- Person(x)")
    assert len(ucq) >= 4


def test_execution_context_bundles_budget_and_retry(university):
    context = university.execution_context(budget=30.0)
    assert isinstance(context, ExecutionContext)
    assert context.budget is not None
    assert context.budget.budget_s == 30.0
    assert context.retry is None
    context.check()  # plenty left
    scoped = context.scoped("phase")
    assert scoped.task == "phase"


def test_perfect_ref_honors_the_budget(university):
    with pytest.raises(TimeoutExceeded):
        perfect_ref(
            parse_query("q(x) :- Person(x)"),
            university.tbox,
            budget=expired_budget(),
        )


def test_evaluate_ucq_honors_the_budget():
    from repro.dllite import ABox

    ucq = parse_query("q(x) :- Person(x)")
    with pytest.raises(TimeoutExceeded):
        evaluate_ucq(ucq, ABoxExtents(ABox()), budget=expired_budget())
