"""The benchmark path (measure) must agree with the materializing path."""

import pytest

from repro.baselines import REASONER_FACTORIES, make_reasoner
from repro.corpus import load_profile


@pytest.fixture(scope="module")
def tbox():
    return load_profile("Transportation", scale=0.2)


@pytest.mark.parametrize("engine", sorted(REASONER_FACTORIES))
def test_measure_equals_materialized_count(engine, tbox):
    reasoner = make_reasoner(engine)
    counted = reasoner.measure(tbox)
    materialized = make_reasoner(engine).classify_named(tbox)
    # measure() counts subsumptions including those implied by unsat lhs,
    # exactly what classify_named materializes
    assert counted == len(materialized)


def test_measure_on_unsat_heavy_ontology():
    from repro.dllite import parse_tbox

    tbox = parse_tbox(
        """
        Dead isa A
        Dead isa B
        A isa not B
        Sub isa Dead
        concept Other
        """
    )
    for engine in ("quonto-graph", "tableau-memoized", "tableau-dense", "saturation"):
        reasoner = make_reasoner(engine)
        assert reasoner.measure(tbox) == len(
            make_reasoner(engine).classify_named(tbox)
        ), engine


def test_owlfs_import_statements_ignored():
    from repro.dllite import parse_owl_functional

    ontology = parse_owl_functional(
        "Ontology(<http://x> Import(<http://other/onto>) SubClassOf(:A :B))"
    )
    assert len(ontology.tbox) == 1
