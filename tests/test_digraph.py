"""Unit tests for the Definition 1 digraph construction."""

import pytest

from repro.core.digraph import (
    ATTRIBUTE_SORT,
    CONCEPT_SORT,
    ROLE_SORT,
    build_digraph,
    sort_of,
)
from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    AttributeDomain,
    ExistentialRole,
    InverseRole,
    parse_tbox,
)

A = AtomicConcept("A")
P = AtomicRole("P")


def test_signature_nodes_per_definition_1():
    tbox = parse_tbox("role P\nconcept A")
    graph = build_digraph(tbox)
    # Rule 1: node A; rule 2: P, P⁻, ∃P, ∃P⁻
    assert A in graph
    assert P in graph
    assert InverseRole(P) in graph
    assert ExistentialRole(P) in graph
    assert ExistentialRole(InverseRole(P)) in graph
    assert graph.node_count == 5
    assert graph.arc_count == 0


def test_concept_inclusion_rule_3():
    graph = build_digraph(parse_tbox("A isa B"))
    arcs = set(graph.arcs())
    assert (AtomicConcept("A"), AtomicConcept("B")) in arcs
    assert graph.arc_count == 1


def test_role_inclusion_rule_4_adds_four_arcs():
    graph = build_digraph(parse_tbox("role P, R\nP isa R"))
    R = AtomicRole("R")
    arcs = set(graph.arcs())
    assert (P, R) in arcs
    assert (InverseRole(P), InverseRole(R)) in arcs
    assert (ExistentialRole(P), ExistentialRole(R)) in arcs
    assert (ExistentialRole(InverseRole(P)), ExistentialRole(InverseRole(R))) in arcs
    assert graph.arc_count == 4


def test_role_inclusion_with_inverse_rhs():
    graph = build_digraph(parse_tbox("role P, R\nP isa R^-"))
    R = AtomicRole("R")
    arcs = set(graph.arcs())
    assert (P, InverseRole(R)) in arcs
    assert (InverseRole(P), R) in arcs
    assert (ExistentialRole(P), ExistentialRole(InverseRole(R))) in arcs
    assert (ExistentialRole(InverseRole(P)), ExistentialRole(R)) in arcs


def test_qualified_existential_rule_5_weakens_filler():
    graph = build_digraph(parse_tbox("A isa exists P . B"))
    arcs = set(graph.arcs())
    assert (A, ExistentialRole(P)) in arcs
    # the filler is NOT an arc target (Definition 1, rule 5)
    assert all(target != AtomicConcept("B") for _, target in arcs)
    assert graph.arc_count == 1


def test_negative_inclusions_contribute_no_arcs():
    graph = build_digraph(parse_tbox("role P, R\nA isa not B\nP isa not R"))
    assert graph.arc_count == 0
    assert graph.node_count > 0


def test_attribute_rules():
    tbox = parse_tbox("attribute u, v\nu isa v\ndomain(u) isa A")
    graph = build_digraph(tbox)
    u, v = AtomicAttribute("u"), AtomicAttribute("v")
    arcs = set(graph.arcs())
    assert (u, v) in arcs
    assert (AttributeDomain(u), AttributeDomain(v)) in arcs
    assert (AttributeDomain(u), A) in arcs


def test_sort_of_nodes():
    assert sort_of(A) == CONCEPT_SORT
    assert sort_of(ExistentialRole(P)) == CONCEPT_SORT
    assert sort_of(AttributeDomain(AtomicAttribute("u"))) == CONCEPT_SORT
    assert sort_of(P) == ROLE_SORT
    assert sort_of(InverseRole(P)) == ROLE_SORT
    assert sort_of(AtomicAttribute("u")) == ATTRIBUTE_SORT
    with pytest.raises(TypeError):
        sort_of("A")


def test_duplicate_arcs_not_double_counted():
    graph = build_digraph(parse_tbox("A isa B\nA isa exists P . C\nA isa exists P"))
    # A ⊑ ∃P.C and A ⊑ ∃P both contribute the arc (A, ∃P) once
    assert graph.arc_count == 2


def test_node_id_lookup_errors():
    graph = build_digraph(parse_tbox("A isa B"))
    with pytest.raises(KeyError):
        graph.node_id(AtomicConcept("Missing"))
