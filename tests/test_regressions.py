"""Replay the minimized regression corpus through the full oracle battery.

Every ``.dl`` file under ``tests/regressions/`` is an ontology that either
once made two engines disagree (written by the conformance shrinker via
``repro conformance --regressions tests/regressions``) or pins a corner
of the logic that is easy to lose.  Each file is replayed through the
differential oracle, the metamorphic battery and — when the signature is
small enough — the brute-force finite-model soundness check, so a bug
fixed once can never silently return.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.dllite import parse_tbox
from repro.testkit import (
    diff_engines,
    run_metamorphic_checks,
    semantics_soundness,
)

CORPUS = Path(__file__).parent / "regressions"
FIXTURES = sorted(CORPUS.glob("*.dl"))

#: Hand-checked expected unsatisfiable predicates per fixture (names).
#: Fixtures written by the shrinker need not appear here; the diff tests
#: still cover them.
EXPECTED_UNSAT = {
    "attribute-domain-unsat": {"A", "U"},
    "inverse-role-disjointness": {"P", "Src"},
    "qualified-existential-cycle": set(),
    "unsat-propagation-chain": {"A", "B", "C", "P"},
}


def _load(path: Path):
    return parse_tbox(path.read_text(), name=path.stem)


def test_corpus_is_not_empty():
    assert FIXTURES, "the regression corpus must contain at least one pin"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_engines_agree_on_reproducer(path):
    assert diff_engines(_load(path)) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_expected_unsat_predicates(path):
    expected = EXPECTED_UNSAT.get(path.stem)
    if expected is None:
        pytest.skip("no hand-checked expectation for this reproducer")
    from repro.baselines import make_reasoner

    result = make_reasoner("quonto-graph").classify_named(_load(path))
    assert {node.name for node in result.unsatisfiable} == expected


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_metamorphic_invariants_hold_on_reproducer(path):
    tbox = _load(path)
    rng = random.Random(f"regression:{path.stem}")
    assert run_metamorphic_checks(tbox, rng) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_classification_is_sound_on_reproducer(path):
    # silently skips (returns []) for signatures too large to enumerate
    assert semantics_soundness(_load(path)) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_reproducer_round_trips_through_serialization(path):
    from repro.dllite import serialize_tbox

    tbox = _load(path)
    assert set(parse_tbox(serialize_tbox(tbox))) == set(tbox)
