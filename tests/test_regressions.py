"""Replay the minimized regression corpus through the full oracle battery.

Every ``.dl`` file under ``tests/regressions/`` is an ontology that either
once made two engines disagree (written by the conformance shrinker via
``repro conformance --regressions tests/regressions``) or pins a corner
of the logic that is easy to lose.  Each file is replayed through the
differential oracle, the metamorphic battery and — when the signature is
small enough — the brute-force finite-model soundness check, so a bug
fixed once can never silently return.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.dllite import parse_tbox
from repro.testkit import (
    diff_engines,
    run_metamorphic_checks,
    semantics_soundness,
)

CORPUS = Path(__file__).parent / "regressions"
FIXTURES = sorted(CORPUS.glob("*.dl"))

#: Hand-checked expected unsatisfiable predicates per fixture (names).
#: Fixtures written by the shrinker need not appear here; the diff tests
#: still cover them.
EXPECTED_UNSAT = {
    "attribute-domain-unsat": {"A", "U"},
    "inverse-role-disjointness": {"P", "Src"},
    "qualified-existential-cycle": set(),
    "unsat-propagation-chain": {"A", "B", "C", "P"},
}


def _load(path: Path):
    return parse_tbox(path.read_text(), name=path.stem)


def test_corpus_is_not_empty():
    assert FIXTURES, "the regression corpus must contain at least one pin"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_engines_agree_on_reproducer(path):
    assert diff_engines(_load(path)) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_expected_unsat_predicates(path):
    expected = EXPECTED_UNSAT.get(path.stem)
    if expected is None:
        pytest.skip("no hand-checked expectation for this reproducer")
    from repro.baselines import make_reasoner

    result = make_reasoner("quonto-graph").classify_named(_load(path))
    assert {node.name for node in result.unsatisfiable} == expected


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_metamorphic_invariants_hold_on_reproducer(path):
    tbox = _load(path)
    rng = random.Random(f"regression:{path.stem}")
    assert run_metamorphic_checks(tbox, rng) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_classification_is_sound_on_reproducer(path):
    # silently skips (returns []) for signatures too large to enumerate
    assert semantics_soundness(_load(path)) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_reproducer_round_trips_through_serialization(path):
    from repro.dllite import serialize_tbox

    tbox = _load(path)
    assert set(parse_tbox(serialize_tbox(tbox))) == set(tbox)


# ---------------------------------------------------------------------------
# planner replays: every fixture through the planner oracle, plus the
# three pinned scenarios the planner-*.dl fixtures exist for


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_planner_agrees_on_reproducer(path):
    """Planned perfectref-sql equals the naive evaluator on seeded data."""
    from repro.testkit import diff_planner
    from repro.testkit.generators import random_abox, random_queries

    tbox = _load(path)
    rng = random.Random(f"planner-regression:{path.stem}")
    abox = random_abox(rng, tbox)
    queries = random_queries(rng, tbox)
    assert diff_planner(tbox, abox, queries) == []


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_backend_agrees_on_reproducer(path):
    """The sqlite pushdown equals both in-memory SQL paths on seeded data."""
    from repro.testkit import diff_backend
    from repro.testkit.generators import random_abox, random_queries

    tbox = _load(path)
    rng = random.Random(f"backend-regression:{path.stem}")
    abox = random_abox(rng, tbox)
    queries = random_queries(rng, tbox)
    assert diff_backend(tbox, abox, queries) == []


def _mapped_system(tbox, tables):
    """An OBDASystem over hand-built unary tables (name -> rows)."""
    from repro.dllite import AtomicConcept
    from repro.obda import Database, MappingAssertion, MappingCollection, TargetAtom
    from repro.obda.mapping import IriTemplate
    from repro.obda.system import OBDASystem

    database = Database("planner-regression")
    mappings = MappingCollection()
    for name, rows in sorted(tables.items()):
        database.create_table(f"t_{name}", ["s"], sorted(rows))
        mappings.add(
            MappingAssertion(
                f"SELECT s FROM t_{name}",
                [TargetAtom(AtomicConcept(name), (IriTemplate("{s}"),))],
            )
        )
    return OBDASystem(tbox, mappings=mappings, database=database)


def _answers(system, text, method="perfectref-sql"):
    from repro.obda.cq_parser import parse_query

    return system.certain_answers(parse_query(text), method=method)


def test_planner_regression_empty_table():
    tbox = _load(CORPUS / "planner-empty-table.dl")
    system = _mapped_system(
        tbox, {"Professor": [], "Teacher": [("t1",), ("t2",)]}
    )
    naive = _mapped_system(
        tbox, {"Professor": [], "Teacher": [("t1",), ("t2",)]}
    )
    naive.use_planner = False
    assert _answers(system, "q(x) :- Teacher(x)") == _answers(
        naive, "q(x) :- Teacher(x)"
    )
    assert len(_answers(system, "q(x) :- Teacher(x)")) == 2
    # boolean query over the empty extent: no rows, so no () answer
    assert _answers(system, "q() :- Professor(x)") == set()
    assert _answers(naive, "q() :- Professor(x)") == set()


def test_planner_regression_cross_product_only():
    tbox = _load(CORPUS / "planner-cross-product.dl")
    tables = {"A": [("a1",), ("a2",)], "B": [("b1",), ("b2",), ("b3",)]}
    system = _mapped_system(tbox, tables)
    naive = _mapped_system(tbox, tables)
    naive.use_planner = False
    query = "q(x, y) :- A(x), B(y)"
    planned = _answers(system, query)
    assert planned == _answers(naive, query)
    assert len(planned) == 6  # honest cross product, exact column order


def test_planner_regression_all_redundant_disjuncts_pruned():
    tbox = _load(CORPUS / "planner-constraint-prune.dl")
    shared = [("p1",), ("p2",), ("p3",)]
    tables = {
        "Professor": shared,
        "Lecturer": shared[:1],
        "Teacher": shared + [("t9",)],
    }
    system = _mapped_system(tbox, tables)
    naive = _mapped_system(tbox, tables)
    naive.use_planner = False
    query = "q(x) :- Teacher(x)"
    assert _answers(system, query) == _answers(naive, query)
    report = system.last_plan_report()
    pruning = report["constraint_pruning"]
    # rewriting yields Teacher ∨ Professor ∨ Lecturer; both specializations
    # are extensionally contained in Teacher, so only one disjunct survives
    assert pruning["before"] == 3
    assert pruning["after"] == 1


def test_backend_regression_mixed_type_keys():
    """The pinned planner-sqlite-mixed-keys scenario, replayed explicitly.

    Mixed-type cells (1, "1", 1.0, True, None) must survive the sqlite
    round trip: selections and joins match by the engine's loose
    equality, while distinct IRI string forms stay apart in the answers.
    """
    from repro.dllite import AtomicConcept, AtomicRole
    from repro.obda import Database, MappingAssertion, MappingCollection, TargetAtom
    from repro.obda.mapping import IriTemplate
    from repro.obda.system import OBDASystem

    tbox = _load(CORPUS / "planner-sqlite-mixed-keys.dl")
    rows = {
        "staff": (["id", "role"], [(1, "prof"), ("1", "lect"), (1.0, "prof"),
                                   (True, "lect"), (None, "prof"), (2, "prof")]),
        "teaching": (["sid", "course"], [(1, "logic"), ("1", "sets"),
                                         (2.0, "compilers")]),
    }

    def build():
        database = Database("sqlite-regression")
        for name, (columns, data) in sorted(rows.items()):
            database.create_table(name, columns, list(data))
        mappings = MappingCollection(
            [
                MappingAssertion(
                    "SELECT id FROM staff WHERE role = 'prof'",
                    [TargetAtom(AtomicConcept("Professor"),
                                (IriTemplate("person/{id}"),))],
                ),
                MappingAssertion(
                    "SELECT id FROM staff WHERE role = 'lect'",
                    [TargetAtom(AtomicConcept("Lecturer"),
                                (IriTemplate("person/{id}"),))],
                ),
                MappingAssertion(
                    "SELECT sid, course FROM teaching",
                    [TargetAtom(AtomicRole("teaches"),
                                (IriTemplate("person/{sid}"),
                                 IriTemplate("course/{course}")))],
                ),
            ]
        )
        return OBDASystem(tbox, mappings=mappings, database=database)

    outcomes = {}
    for label, method, planner in (
        ("sqlite", "perfectref-sqlite", True),
        ("planned", "perfectref-sql", True),
        ("naive", "perfectref-sql", False),
    ):
        system = build()
        system.use_planner = planner
        outcomes[label] = {
            text: _answers(system, text, method=method)
            for text in (
                "q(x) :- Teacher(x)",
                "q(x, y) :- teaches(x, y)",
                "q(y) :- Professor(x), teaches(x, y)",
                "q() :- Lecturer(x)",
            )
        }
    assert outcomes["sqlite"] == outcomes["naive"]
    assert outcomes["planned"] == outcomes["naive"]
    # the loose equality matched 1 / "1" / 1.0 / True, but their string
    # forms — hence their IRIs — stay distinct certain answers
    teachers = {answer[0].name for answer in outcomes["sqlite"]["q(x) :- Teacher(x)"]}
    assert {"person/1", "person/1.0", "person/True", "person/None"} <= teachers
