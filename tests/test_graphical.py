"""Unit tests for the graphical language: model, translation, layout, SVG."""

import pytest

from repro.dllite import (
    AtomicAttribute,
    AtomicConcept,
    AtomicRole,
    parse_axiom,
    parse_tbox,
)
from repro.errors import DiagramError
from repro.graphical import (
    Diagram,
    diagram_to_tbox,
    figure2_diagram,
    layout,
    render_svg,
    tbox_to_diagram,
)


def test_figure2_translates_to_the_papers_axioms():
    tbox = diagram_to_tbox(figure2_diagram())
    expected = {
        parse_axiom("County isa exists isPartOf . State"),
        parse_axiom("State isa exists isPartOf^- . County"),
    }
    assert set(tbox.axioms) == expected
    # isPartOf is deliberately not typed on County/State (paper remark)
    assert len(tbox) == 2


def test_diagram_round_trip(county_tbox):
    diagram = tbox_to_diagram(county_tbox)
    back = diagram_to_tbox(diagram)
    assert set(back.axioms) == set(county_tbox.axioms)
    assert back.signature == county_tbox.signature


def test_diagram_round_trip_with_attributes(university_tbox):
    diagram = tbox_to_diagram(university_tbox)
    back = diagram_to_tbox(diagram)
    # functionality round-trips as a ≤1 label on the corresponding square
    assert set(back.axioms) == set(university_tbox.axioms)


def test_cardinality_label_denotes_functionality():
    from repro.dllite import FunctionalRole, FunctionalAttribute
    from repro.dllite.syntax import AtomicRole, AtomicAttribute, InverseRole

    diagram = Diagram()
    diagram.role("P")
    diagram.attribute("u")
    diagram.domain_square("P", max_cardinality=1)
    diagram.range_square("P", max_cardinality=1, id="rng")
    diagram.domain_square("u", max_cardinality=1)
    tbox = diagram_to_tbox(diagram)
    assert FunctionalRole(AtomicRole("P")) in tbox
    assert FunctionalRole(InverseRole(AtomicRole("P"))) in tbox
    assert FunctionalAttribute(AtomicAttribute("u")) in tbox


def test_higher_cardinality_rejected_in_dllite_mode():
    diagram = Diagram()
    diagram.role("P")
    diagram.domain_square("P", max_cardinality=3)
    with pytest.raises(DiagramError):
        diagram.validate()


def test_cardinality_label_rendered():
    diagram = Diagram()
    diagram.role("P")
    diagram.domain_square("P", max_cardinality=1)
    svg = render_svg(diagram)
    assert "&#8804;1" in svg


def test_negated_edge_translates_to_disjointness():
    diagram = Diagram()
    diagram.concept("A")
    diagram.concept("B")
    diagram.include("A", "B", negated=True)
    tbox = diagram_to_tbox(diagram)
    assert parse_axiom("A isa not B") in tbox


def test_role_edge_with_inverse_marks():
    diagram = Diagram()
    diagram.role("P")
    diagram.role("R")
    diagram.include("P", "R", source_inverse=True, target_inverse=False)
    tbox = diagram_to_tbox(diagram)
    assert parse_axiom("P^- isa R") in tbox


def test_validation_catches_dangling_square():
    diagram = Diagram()
    diagram.concept("A")
    from repro.graphical.model import RestrictionSquare

    diagram.elements["sq"] = RestrictionSquare("sq", role_id="missing")
    with pytest.raises(DiagramError):
        diagram.validate()


def test_validation_catches_cross_kind_edge():
    diagram = Diagram()
    diagram.concept("A")
    diagram.role("P")
    diagram.include("A", "P")
    with pytest.raises(DiagramError):
        diagram.validate()


def test_validation_rejects_black_square_on_attribute():
    diagram = Diagram()
    diagram.attribute("u")
    from repro.graphical.model import RestrictionSquare

    diagram.elements["sq"] = RestrictionSquare("sq", role_id="u", inverse=True)
    with pytest.raises(DiagramError):
        diagram.validate()


def test_qualified_square_cannot_be_lhs():
    diagram = Diagram()
    diagram.concept("A")
    diagram.concept("B")
    diagram.role("P")
    square = diagram.domain_square("P", filler="B")
    diagram.include(square.id, "A")
    with pytest.raises(DiagramError):
        diagram_to_tbox(diagram)


def test_duplicate_element_ids_rejected():
    diagram = Diagram()
    diagram.concept("A")
    with pytest.raises(DiagramError):
        diagram.concept("A")


def test_layout_layers_subsumers_above():
    tbox = parse_tbox("A isa B\nB isa C")
    diagram = tbox_to_diagram(tbox)
    positions = layout(diagram)
    assert positions["C"][1] < positions["B"][1] < positions["A"][1]


def test_layout_positions_every_element():
    diagram = tbox_to_diagram(parse_tbox("role P\nA isa exists P . B\nA isa C"))
    positions = layout(diagram)
    assert set(positions) == set(diagram.elements)


def test_layout_survives_equivalence_cycles():
    diagram = tbox_to_diagram(parse_tbox("A isa B\nB isa A"))
    positions = layout(diagram)
    assert len(positions) == 2


def test_svg_renders_all_shapes(county_tbox):
    svg = render_svg(tbox_to_diagram(county_tbox), title="county")
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert "<rect" in svg  # concepts + squares
    assert "<polygon" in svg  # role diamonds
    assert "stroke-dasharray" in svg  # dotted links
    assert "marker-end" in svg  # directed edges
    assert "county" in svg


def test_svg_black_and_white_squares():
    svg = render_svg(figure2_diagram())
    assert "fill='#fff'" in svg  # white/domain square
    assert "fill='#333'" in svg  # black/range square


def test_svg_escapes_labels():
    diagram = Diagram()
    diagram.concept("A<B>&C")
    svg = render_svg(diagram)
    assert "A&lt;B&gt;&amp;C" in svg
