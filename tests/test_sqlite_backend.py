"""Unit tests for the SQLite pushdown backend (repro.obda.sql.backends).

The contract under test: for every unfolded UCQ, the backend's answer
set equals the naive in-memory evaluator's — including the mixed-type
equality corners (``a == b or str(a) == str(b)``) that motivated the
dual-key storage encoding — while loading incrementally (only new rows
re-shipped on insert) and honoring ``runtime.budget`` deadlines from
inside SQLite via a progress handler.
"""

import math
import os

import pytest

from repro.dllite import AtomicAttribute, AtomicConcept, AtomicRole
from repro.dllite.abox import Individual
from repro.dllite.parser import parse_tbox
from repro.errors import MappingError, ReproError, TimeoutExceeded
from repro.obda.mapping import (
    IriTemplate,
    MappingAssertion,
    MappingCollection,
    TargetAtom,
    ValueColumn,
)
from repro.obda.cq_parser import parse_query
from repro.obda.rewriting.unfolding import unfold
from repro.obda.sql.backends import SqliteBackend, _decode_raw, _encode_cell
from repro.obda.sql.database import Database
from repro.obda.system import OBDASystem
from repro.runtime.budget import Budget

TBOX = parse_tbox(
    """
    Professor isa Teacher
    Lecturer isa Teacher
    exists teaches isa Teacher
    """
)


def _campus(rows_staff=None, rows_teaching=None):
    database = Database("campus")
    staff = database.create_table("staff", ["id", "role"])
    teaching = database.create_table("teaching", ["sid", "course"])
    for row in rows_staff if rows_staff is not None else [
        (1, "prof"),
        ("2", "lect"),
        (3.0, "prof"),
        (True, "lect"),
        (None, "prof"),
    ]:
        staff.insert(row)
    for row in rows_teaching if rows_teaching is not None else [
        (1, "c1"),
        ("1", "c2"),
        (2, "c3"),
        (1.0, "c4"),
        ("x", "c5"),
    ]:
        teaching.insert(row)
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'prof'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT id FROM staff WHERE role = 'lect'",
                [TargetAtom(AtomicConcept("Lecturer"), (IriTemplate("person/{id}"),))],
            ),
            MappingAssertion(
                "SELECT sid, course FROM teaching",
                [
                    TargetAtom(
                        AtomicRole("teaches"),
                        (IriTemplate("person/{sid}"), IriTemplate("course/{course}")),
                    )
                ],
            ),
        ]
    )
    return database, mappings


QUERIES = [
    "q(x) :- Teacher(x)",
    "q(x) :- Professor(x)",
    "q(x, y) :- teaches(x, y), Professor(x)",
    "q(x) :- Professor(x), teaches(x, y)",
    "q() :- Lecturer(x)",
    "q() :- Professor(x), teaches(x, y)",
]


def _systems():
    database, mappings = _campus()
    sqlite = OBDASystem(TBOX, mappings, database, backend="sqlite")
    naive = OBDASystem(TBOX, mappings, database, use_planner=False)
    planned = OBDASystem(TBOX, mappings, database, use_planner=True)
    return database, sqlite, naive, planned


# -- answer equivalence --------------------------------------------------------


@pytest.mark.parametrize("query", QUERIES)
def test_backend_matches_naive_and_planner(query):
    _, sqlite, naive, planned = _systems()
    expected = naive.certain_answers(query, method="perfectref-sql")
    assert sqlite.certain_answers(query, method="perfectref-sqlite") == expected
    assert planned.certain_answers(query, method="perfectref-sql") == expected


def test_backend_flag_routes_plain_sql_method():
    _, sqlite, naive, _ = _systems()
    query = "q(x) :- Teacher(x)"
    assert sqlite.certain_answers(
        query, method="perfectref-sql"
    ) == naive.certain_answers(query, method="perfectref-sql")
    assert sqlite.planner_stats["pushdown_queries"] >= 1
    assert sqlite.planner_stats["planned_queries"] == 0


def test_mixed_numeric_templates_keep_all_individuals():
    """The 1 vs 1.0 completeness case: KB mode, naive, planner and the
    backend all answer with *both* person/1 and person/1.0."""
    database, mappings = _campus(
        rows_staff=[], rows_teaching=[(1, "c1"), (1.0, "c4")]
    )
    expected = {(Individual("person/1"),), (Individual("person/1.0"),)}
    kb = OBDASystem(TBOX, mappings, database)
    assert kb.certain_answers("q(x) :- Teacher(x)", method="perfectref") == expected
    for kwargs, method in [
        (dict(use_planner=False), "perfectref-sql"),
        (dict(use_planner=True), "perfectref-sql"),
        (dict(backend="sqlite"), "perfectref-sqlite"),
    ]:
        system = OBDASystem(TBOX, mappings, database, **kwargs)
        assert system.certain_answers("q(x) :- Teacher(x)", method=method) == expected


def test_raw_value_answers_decode_faithfully():
    database = Database("hr")
    database.create_table(
        "salaries",
        ["pid", "amount"],
        [(1, 100), (2, "high"), (3, 2.5), (4, None), (5, True), (6, False)],
    )
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT pid, amount FROM salaries",
                [
                    TargetAtom(
                        AtomicAttribute("salary"),
                        (IriTemplate("person/{pid}"), ValueColumn("amount")),
                    )
                ],
            )
        ]
    )
    tbox = parse_tbox("exists salary isa Paid")
    naive = OBDASystem(tbox, mappings, database, use_planner=False)
    sqlite = OBDASystem(tbox, mappings, database, backend="sqlite")
    expected = naive.certain_answers("q(x, v) :- salary(x, v)", method="perfectref-sql")
    got = sqlite.certain_answers("q(x, v) :- salary(x, v)", method="perfectref-sqlite")
    assert got == expected
    values = {answer[1] for answer in got}
    assert values == {100, "high", 2.5, None, True, False}
    # bool cells decode back to bool, not to SQLite's 0/1 integers
    assert any(value is True for value in values)
    assert any(value is False for value in values)


def test_unknown_backend_and_method_rejected():
    database, mappings = _campus()
    with pytest.raises(ReproError):
        OBDASystem(TBOX, mappings, database, backend="postgres")
    system = OBDASystem(TBOX, mappings, database)
    with pytest.raises(ReproError):
        system.certain_answers("q(x) :- Teacher(x)", method="perfectref-duckdb")


def test_kb_mode_rejects_sqlite_method():
    from repro.dllite.abox import ABox

    system = OBDASystem(TBOX, abox=ABox())
    with pytest.raises(ReproError):
        system.certain_answers("q(x) :- Teacher(x)", method="perfectref-sqlite")


# -- loading -------------------------------------------------------------------


def test_delta_loading_ships_only_new_rows():
    database, sqlite, naive, _ = _systems()
    query = "q(x) :- Professor(x)"
    sqlite.certain_answers(query, method="perfectref-sqlite")
    backend = sqlite.sql_backend()
    stats = backend.stats()
    assert stats["full_loads"] >= 1
    shipped_before = stats["rows_shipped"]
    database["staff"].insert((7, "prof"))
    answers = sqlite.certain_answers(query, method="perfectref-sqlite")
    assert answers == naive.certain_answers(query, method="perfectref-sql")
    assert (Individual("person/7"),) in answers
    stats = backend.stats()
    assert stats["delta_loads"] >= 1
    assert stats["rows_shipped"] == shipped_before + 1


def test_unchanged_generation_ships_nothing():
    _, sqlite, _, _ = _systems()
    query = "q(x) :- Professor(x)"
    sqlite.certain_answers(query, method="perfectref-sqlite")
    shipped = sqlite.sql_backend().stats()["rows_shipped"]
    # different query shape over the same tables: no rows move again
    sqlite.certain_answers("q(x) :- Lecturer(x)", method="perfectref-sqlite")
    assert sqlite.sql_backend().stats()["rows_shipped"] == shipped


def test_invalidate_forces_full_reload():
    database, sqlite, naive, _ = _systems()
    query = "q(x) :- Professor(x)"
    sqlite.certain_answers(query, method="perfectref-sqlite")
    backend = sqlite.sql_backend()
    # out-of-band mutation the generation counter cannot see
    database["staff"].rows[:] = [(9, "prof")]
    sqlite.invalidate_caches()
    naive.invalidate_caches()
    assert sqlite.certain_answers(
        query, method="perfectref-sqlite"
    ) == naive.certain_answers(query, method="perfectref-sql")
    assert backend.stats()["full_loads"] >= 2


def test_file_backed_path_reloads_cleanly(tmp_path):
    path = os.fspath(tmp_path / "pushdown.db")
    database, mappings = _campus()
    first = OBDASystem(
        TBOX, mappings, database, backend="sqlite", backend_path=path
    )
    expected = first.certain_answers("q(x) :- Teacher(x)", method="perfectref-sqlite")
    first.sql_backend().close()
    assert os.path.exists(path)
    # a fresh backend over the same file treats it as scratch and reloads
    second = OBDASystem(
        TBOX, mappings, database, backend="sqlite", backend_path=path
    )
    assert (
        second.certain_answers("q(x) :- Teacher(x)", method="perfectref-sqlite")
        == expected
    )


def test_closed_backend_raises():
    _, sqlite, _, _ = _systems()
    sqlite.certain_answers("q(x) :- Teacher(x)", method="perfectref-sqlite")
    sqlite.sql_backend().close()
    with pytest.raises(ReproError):
        sqlite.certain_answers("q(y) :- teaches(x, y)", method="perfectref-sqlite")


# -- statement cache -----------------------------------------------------------


def test_statement_cache_hits_on_requery():
    database, mappings = _campus()
    system = OBDASystem(TBOX, mappings, database, backend="sqlite")
    ucq = system.rewrite(parse_query("q(x) :- Teacher(x)"))
    unfolded = unfold(ucq, mappings)
    backend = system.sql_backend()
    first = backend.execute_unfolded(unfolded)
    assert backend.stats()["statement_misses"] >= 1
    second = backend.execute_unfolded(unfolded)
    assert first == second
    assert backend.stats()["statement_hits"] >= 1
    assert backend.last_report()["statement_cache"] == "hit"


def test_statement_cache_revalidates_generation():
    database, mappings = _campus()
    backend = SqliteBackend(database)
    ucq = OBDASystem(TBOX, mappings, database).rewrite(
        parse_query("q(x) :- Professor(x)")
    )
    unfolded = unfold(ucq, mappings)
    before = backend.execute_unfolded(unfolded)
    stamp_before = backend.last_report()["generation_stamp"]
    database["staff"].insert((42, "prof"))
    after = backend.execute_unfolded(unfolded)
    assert backend.last_report()["statement_cache"] == "hit"
    assert backend.last_report()["generation_stamp"] > stamp_before
    assert after == before | {(Individual("person/42"),)}


# -- SQL shapes ----------------------------------------------------------------


def test_union_mapping_source_pushes_down():
    database = Database("multi")
    database.create_table("a_profs", ["pid"], [(1,), (2,)])
    database.create_table("b_profs", ["pid"], [(2,), ("3",)])
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT pid FROM a_profs UNION SELECT pid FROM b_profs",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{pid}"),))],
            )
        ]
    )
    naive = OBDASystem(TBOX, mappings, database, use_planner=False)
    sqlite = OBDASystem(TBOX, mappings, database, backend="sqlite")
    expected = naive.certain_answers("q(x) :- Professor(x)", method="perfectref-sql")
    assert (
        sqlite.certain_answers("q(x) :- Professor(x)", method="perfectref-sqlite")
        == expected
    )
    assert {answer[0].name for answer in expected} == {"p/1", "p/2", "p/3"}


def test_inequality_condition_pushes_down():
    database = Database("ineq")
    database.create_table(
        "staff", ["id", "role"], [(1, "prof"), (2, "lect"), ("1", "dean")]
    )
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM staff WHERE role != 'lect'",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{id}"),))],
            )
        ]
    )
    naive = OBDASystem(TBOX, mappings, database, use_planner=False)
    sqlite = OBDASystem(TBOX, mappings, database, backend="sqlite")
    expected = naive.certain_answers("q(x) :- Professor(x)", method="perfectref-sql")
    assert (
        sqlite.certain_answers("q(x) :- Professor(x)", method="perfectref-sqlite")
        == expected
    )


def test_numeric_constant_selection_matches_equal_semantics():
    database = Database("consts")
    database.create_table(
        "cells", ["id", "flag"], [(1, 1), (2, "1"), (3, 1.0), (4, True), (5, 2)]
    )
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT id FROM cells WHERE flag = 1",
                [TargetAtom(AtomicConcept("Professor"), (IriTemplate("p/{id}"),))],
            )
        ]
    )
    naive = OBDASystem(TBOX, mappings, database, use_planner=False)
    sqlite = OBDASystem(TBOX, mappings, database, backend="sqlite")
    expected = naive.certain_answers("q(x) :- Professor(x)", method="perfectref-sql")
    got = sqlite.certain_answers("q(x) :- Professor(x)", method="perfectref-sqlite")
    assert got == expected
    # equal(cell, 1) accepts 1, "1", 1.0 and True — but not 2
    assert {answer[0].name for answer in got} == {"p/1", "p/2", "p/3", "p/4"}


def test_empty_unfolding_returns_empty_set():
    database, mappings = _campus()
    backend = SqliteBackend(database)
    ucq = parse_query("q(x) :- Unmapped(x)")
    unfolded = unfold(ucq, mappings)
    assert unfolded.size == 0
    assert backend.execute_unfolded(unfolded) == set()


def test_single_statement_is_shipped():
    database, mappings = _campus()
    system = OBDASystem(TBOX, mappings, database, backend="sqlite")
    system.certain_answers("q(x) :- Teacher(x)", method="perfectref-sqlite")
    report = system.last_backend_report()
    assert report is not None
    assert report["parts"] >= 3  # Professor, Lecturer, exists-teaches disjuncts
    assert report["sql"].count("UNION") == report["parts"] - 1


# -- budgets -------------------------------------------------------------------


def test_expired_budget_raises_before_execution():
    database, mappings = _campus()
    backend = SqliteBackend(database)
    unfolded = unfold(
        OBDASystem(TBOX, mappings, database).rewrite(parse_query("q(x) :- Teacher(x)")),
        mappings,
    )
    with pytest.raises(TimeoutExceeded):
        backend.execute_unfolded(unfolded, budget=Budget(0.0, task="t"))


def test_progress_handler_aborts_runaway_statement():
    database = Database("big")
    left = database.create_table("lefts", ["v"])
    right = database.create_table("rights", ["v"])
    for i in range(1500):
        left.insert((f"l{i}",))
        right.insert((f"r{i}",))
    mappings = MappingCollection(
        [
            MappingAssertion(
                "SELECT v FROM lefts",
                [TargetAtom(AtomicConcept("A"), (IriTemplate("a/{v}"),))],
            ),
            MappingAssertion(
                "SELECT v FROM rights",
                [TargetAtom(AtomicConcept("B"), (IriTemplate("b/{v}"),))],
            ),
        ]
    )
    tbox = parse_tbox("A isa Thing\nB isa Thing")
    unfolded = unfold(
        parse_query("q(x, y) :- A(x), B(y)"), mappings
    )
    backend = SqliteBackend(database, progress_stride=1000)
    budget = Budget(30.0, task="cross")
    backend._ensure_loaded(  # preload so the budget is spent inside execute
        {"lefts": database["lefts"], "rights": database["rights"]}, budget
    )
    with pytest.raises(TimeoutExceeded):
        backend.execute_unfolded(unfolded, budget=Budget(0.05, task="cross"))


# -- cell encoding -------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [1, -7, "x", "1", 2.5, 2.0, True, False, None, float("inf"), float("-inf")],
)
def test_encode_decode_roundtrip(value):
    raw, text, _ = _encode_cell(value)
    assert text == str(value)
    decoded = _decode_raw(raw, text)
    assert decoded == value and type(decoded) is type(value)


def test_encode_nan_and_huge_ints_degrade_as_documented():
    raw, text, numeric = _encode_cell(float("nan"))
    assert text == "nan" and numeric is None
    assert math.isnan(_decode_raw(None, "nan"))
    raw, text, numeric = _encode_cell(10 ** 30)
    assert raw == text == str(10 ** 30)
    assert numeric == float(10 ** 30)


def test_retry_wrapped_database_is_used_for_table_access():
    from repro.runtime.retry import RetryPolicy

    database, mappings = _campus()
    system = OBDASystem(TBOX, mappings, database, backend="sqlite")
    answers = system.certain_answers(
        "q(x) :- Teacher(x)",
        method="perfectref-sqlite",
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
    )
    naive = OBDASystem(TBOX, mappings, database, use_planner=False)
    assert answers == naive.certain_answers("q(x) :- Teacher(x)", method="perfectref-sql")
